"""Tests for the static SPF analyzer (repro.lint).

The headline test is the static/dynamic agreement sweep: for every one of
the 39 paper test policies, the term-graph walker's predicted worst-case
lookup/void counts and limit verdict must match what the dynamic
``SpfEvaluator`` actually does against the synthesizing DNS server.
"""

import pytest

from repro.core.policies import POLICIES, PolicyContext
from repro.core.preflight import (
    PolicyRecordSource,
    PreflightError,
    audit_policy,
    preflight_policies,
)
from repro.core.synth import SynthConfig, SynthesizingAuthority
from repro.dns.rdata import ARecord, CnameRecord, MxRecord, RdataType, TxtRecord
from repro.dns.resolver import AuthorityDirectory, Resolver, ResolverConfig
from repro.lint import (
    DictRecordSource,
    SourceStatus,
    audit_record_text,
    audit_spf_domain,
)
from repro.net.clock import Clock
from repro.net.latency import LatencyModel
from repro.net.network import Network
from repro.spf.errors import SpfSyntaxError
from repro.spf.evaluator import SpfEvaluator
from repro.spf.parser import parse_record
from repro.spf.result import SpfResult
from repro.spf.terms import InvalidTerm


# -- parser satellites: offsets and singleton modifiers -------------------


class TestParserOffsets:
    def test_terms_carry_offsets(self):
        text = "v=spf1 a:x.example redirect=y.example"
        record = parse_record(text)
        directive, modifier = record.terms
        assert text[directive.start : directive.end] == "a:x.example"
        assert text[modifier.start : modifier.end] == "redirect=y.example"

    def test_invalid_terms_carry_offsets(self):
        text = "v=spf1 bogus:thing -all"
        record = parse_record(text, tolerant=True)
        invalid = record.invalid_terms[0]
        assert text[invalid.start : invalid.end] == "bogus:thing"

    def test_offsets_do_not_affect_equality(self):
        parsed = parse_record("v=spf1 -all").terms[0]
        shifted = parse_record("v=spf1    -all").terms[0]
        assert parsed.start != shifted.start
        assert parsed == shifted


class TestSingletonModifiers:
    def test_duplicate_redirect_strict_permerror(self):
        with pytest.raises(SpfSyntaxError, match="duplicate redirect"):
            parse_record("v=spf1 redirect=a.example redirect=b.example")

    def test_duplicate_exp_strict_permerror(self):
        with pytest.raises(SpfSyntaxError, match="duplicate exp"):
            parse_record("v=spf1 -all exp=a.example exp=b.example")

    def test_duplicate_tolerant_keeps_first(self):
        record = parse_record("v=spf1 redirect=a.example redirect=b.example", tolerant=True)
        assert record.modifier("redirect") == "a.example"
        assert isinstance(record.terms[-1], InvalidTerm)
        assert "duplicate" in record.terms[-1].reason

    def test_single_redirect_still_fine(self):
        record = parse_record("v=spf1 redirect=a.example")
        assert record.modifier("redirect") == "a.example"


# -- record-level rules ----------------------------------------------------


def _codes(text, **kwargs):
    return audit_record_text(text, **kwargs).report.codes()


class TestRecordRules:
    def test_plus_all(self):
        assert "SPF022" in _codes("v=spf1 +all")

    def test_neutral_all(self):
        assert "SPF023" in _codes("v=spf1 ?all")

    def test_no_terminal(self):
        assert "SPF024" in _codes("v=spf1 ip4:192.0.2.0/24")

    def test_unreachable_after_all(self):
        assert "SPF020" in _codes("v=spf1 -all ip4:192.0.2.1")

    def test_redirect_with_all(self):
        assert "SPF021" in _codes("v=spf1 -all redirect=r.example")

    def test_ptr(self):
        assert "SPF025" in _codes("v=spf1 ptr -all")

    def test_unknown_modifier(self):
        assert "SPF027" in _codes("v=spf1 moo=cow -all")

    def test_duplicate_modifier_diagnostic_with_span(self):
        audit = audit_record_text("v=spf1 redirect=a.example redirect=b.example")
        finding = next(d for d in audit.report.diagnostics if d.code == "SPF004")
        assert finding.span.slice(audit.record_text) == "redirect=b.example"
        assert audit.prediction.statically_permerror

    def test_oversize_record(self):
        fat = "v=spf1 " + " ".join("ip4:192.0.2.%d" % i for i in range(1, 120)) + " -all"
        assert "SPF005" in _codes(fat)

    def test_macro_include(self):
        audit = audit_record_text("v=spf1 include:%{i}.x.example -all")
        assert audit.report.has("SPF026")
        assert not audit.prediction.complete

    def test_clean_record_is_clean(self):
        audit = audit_record_text("v=spf1 ip4:192.0.2.0/24 -all")
        assert audit.report.diagnostics == []
        assert audit.prediction.lookup_terms == 0
        assert audit.prediction.result is SpfResult.FAIL


# -- graph walking over a DictRecordSource --------------------------------


def _source(records):
    return DictRecordSource(records, origin="example.com")


class TestGraphWalk:
    def test_include_chain_counts(self):
        source = _source(
            {
                "example.com": [TxtRecord("v=spf1 include:a.example.com -all")],
                "a.example.com": [TxtRecord("v=spf1 include:b.example.com ?all")],
                "b.example.com": [TxtRecord("v=spf1 ip4:192.0.2.1 ?all")],
            }
        )
        audit = audit_spf_domain("example.com", source)
        assert audit.prediction.lookup_terms == 2
        assert audit.prediction.first_abort is None
        assert audit.prediction.complete

    def test_include_cycle(self):
        source = _source(
            {
                "example.com": [TxtRecord("v=spf1 include:a.example.com -all")],
                "a.example.com": [TxtRecord("v=spf1 include:example.com ?all")],
            }
        )
        audit = audit_spf_domain("example.com", source)
        assert audit.report.has("SPF013")
        assert audit.prediction.cycle
        assert audit.prediction.first_abort == "lookup_limit"
        assert audit.report.has("SPF010")

    def test_redirect_cycle(self):
        source = _source({"example.com": [TxtRecord("v=spf1 redirect=example.com")]})
        audit = audit_spf_domain("example.com", source)
        assert audit.report.has("SPF014")
        assert audit.prediction.cycle

    def test_include_without_spf(self):
        source = _source(
            {
                "example.com": [TxtRecord("v=spf1 include:a.example.com -all")],
                "a.example.com": [TxtRecord("plain text, not spf")],
            }
        )
        audit = audit_spf_domain("example.com", source)
        assert audit.report.has("SPF015")
        assert audit.prediction.first_abort == "permerror:include-none"

    def test_redirect_without_spf(self):
        source = _source(
            {
                "example.com": [TxtRecord("v=spf1 redirect=a.example.com")],
                "a.example.com": [ARecord("192.0.2.1")],
            }
        )
        audit = audit_spf_domain("example.com", source)
        assert audit.report.has("SPF016")
        assert audit.prediction.first_abort == "permerror:redirect-none"

    def test_lookup_limit_exceeded(self):
        terms = " ".join("a:h%d.example.com" % i for i in range(11))
        records = {"example.com": [TxtRecord("v=spf1 %s -all" % terms)]}
        for i in range(11):
            records["h%d.example.com" % i] = [ARecord("192.0.2.%d" % (i + 1))]
        audit = audit_spf_domain("example.com", _source(records))
        assert audit.prediction.lookup_terms == 11
        assert audit.prediction.first_abort == "lookup_limit"
        assert audit.report.has("SPF010")

    def test_near_limit_warning(self):
        terms = " ".join("a:h%d.example.com" % i for i in range(8))
        records = {"example.com": [TxtRecord("v=spf1 %s -all" % terms)]}
        for i in range(8):
            records["h%d.example.com" % i] = [ARecord("192.0.2.%d" % (i + 1))]
        audit = audit_spf_domain("example.com", _source(records))
        assert audit.prediction.first_abort is None
        assert audit.report.has("SPF011")

    def test_two_voids_allowed_three_abort(self):
        base = {"example.com": [TxtRecord("v=spf1 a:v1.example.com a:v2.example.com -all")]}
        audit = audit_spf_domain("example.com", _source(base))
        assert audit.prediction.void_lookups == 2
        assert audit.prediction.first_abort is None

        base = {
            "example.com": [
                TxtRecord("v=spf1 a:v1.example.com a:v2.example.com a:v3.example.com -all")
            ]
        }
        audit = audit_spf_domain("example.com", _source(base))
        assert audit.prediction.first_abort == "void_limit"
        assert audit.report.has("SPF012")

    def test_mx_limit(self):
        records = {
            "example.com": [TxtRecord("v=spf1 mx:big.example.com -all")],
            "big.example.com": [
                MxRecord(i, "x%d.example.com" % i) for i in range(11)
            ],
        }
        for i in range(11):
            records["x%d.example.com" % i] = [ARecord("192.0.2.%d" % (i + 1))]
        audit = audit_spf_domain("example.com", _source(records))
        assert audit.report.has("SPF018")
        assert audit.prediction.first_abort == "mx_limit"

    def test_null_mx_no_void(self):
        records = {
            "example.com": [TxtRecord("v=spf1 mx:null.example.com -all")],
            "null.example.com": [MxRecord(0, ".")],
        }
        audit = audit_spf_domain("example.com", _source(records))
        assert audit.report.has("SPF019")
        assert audit.prediction.void_lookups == 0
        assert audit.prediction.first_abort is None

    def test_multiple_records(self):
        source = _source(
            {"example.com": [TxtRecord("v=spf1 -all"), TxtRecord("v=spf1 ~all")]}
        )
        audit = audit_spf_domain("example.com", source)
        assert audit.report.has("SPF003")
        assert audit.prediction.first_abort == "permerror:multiple-records"

    def test_exists_known_found_is_static_match(self):
        source = _source(
            {
                "example.com": [TxtRecord("v=spf1 exists:ok.example.com -all")],
                "ok.example.com": [ARecord("192.0.2.1")],
            }
        )
        audit = audit_spf_domain("example.com", source)
        assert audit.prediction.result is SpfResult.PASS
        assert audit.prediction.lookup_terms == 1

    def test_cname_chased_to_spf(self):
        source = _source(
            {
                "example.com": [CnameRecord("real.example.com")],
                "real.example.com": [TxtRecord("v=spf1 -all")],
            }
        )
        audit = audit_spf_domain("example.com", source)
        assert audit.prediction.result is SpfResult.FAIL

    def test_unknown_target_marks_lower_bound(self):
        audit = audit_record_text(
            "v=spf1 include:other.example.net -all", domain="example.com"
        )
        assert audit.report.has("SPF028")
        assert not audit.prediction.complete

    def test_no_spf_returns_none(self):
        assert audit_spf_domain("example.com", _source({"example.com": [ARecord("192.0.2.1")]})) is None

    def test_dict_source_statuses(self):
        source = _source({"a.example.com": [ARecord("192.0.2.1")]})
        assert source.fetch("a.example.com", RdataType.TXT).status is SourceStatus.NODATA
        assert source.fetch("example.com", RdataType.A).status is SourceStatus.NODATA
        assert source.fetch("nope.example.com", RdataType.A).status is SourceStatus.NXDOMAIN
        assert source.fetch("example.net", RdataType.A).status is SourceStatus.UNKNOWN


# -- static vs dynamic agreement on all 39 paper policies ------------------


def _deployed_evaluator():
    network = Network(LatencyModel(0.005), Clock())
    directory = AuthorityDirectory()
    synth_config = SynthConfig(sender_ips=("203.0.113.9",), dkim_key_b64="QUJD")
    SynthesizingAuthority(synth_config).deploy(network, directory)
    # timeout=30: t31/t37 delay responses up to 9 s by design; with the
    # default 5 s the dynamic side would temperror on latency, which the
    # static analyzer by construction cannot see.
    resolver = Resolver(
        network,
        directory,
        address4="203.0.113.77",
        address6="2001:db8:77::1",
        config=ResolverConfig(timeout=30.0),
    )
    return SpfEvaluator(resolver), synth_config


def _static_audit(policy, synth_config):
    ctx = PolicyContext(
        base="%s.m1.%s" % (policy.testid, synth_config.probe_suffix),
        mtaid="m1",
        testid=policy.testid,
        v6_base="%s.m1.%s" % (policy.testid, synth_config.v6_suffix),
        helo_base="h.%s.m1.%s" % (policy.testid, synth_config.probe_suffix),
        probe_ipv4=synth_config.probe_ipv4,
        probe_ipv6=synth_config.probe_ipv6,
    )
    return audit_spf_domain(ctx.base, PolicyRecordSource(policy, ctx))


@pytest.mark.parametrize("policy", POLICIES, ids=[p.testid for p in POLICIES])
def test_static_prediction_matches_dynamic_evaluator(policy):
    """For every paper policy: predicted counts and limit verdict must
    match what the dynamic evaluator does against the synth server."""
    evaluator, synth_config = _deployed_evaluator()
    audit = _static_audit(policy, synth_config)
    assert audit is not None, "policy %s publishes no SPF" % policy.testid

    domain = audit.domain
    outcome = evaluator.check_host(
        synth_config.probe_ipv4, domain, "probe@" + domain, t_start=0.0
    )
    prediction = audit.prediction

    if prediction.exceeds_limits:
        assert outcome.result is SpfResult.PERMERROR, (
            "%s: static predicts %s but dynamic returned %s"
            % (policy.testid, prediction.first_abort, outcome.result)
        )
        return
    if outcome.result is SpfResult.PERMERROR:
        assert prediction.statically_permerror, (
            "%s: dynamic permerror not predicted statically" % policy.testid
        )
        return
    assert prediction.lookup_terms == outcome.mechanism_lookups, (
        "%s: static %d lookups, dynamic %d"
        % (policy.testid, prediction.lookup_terms, outcome.mechanism_lookups)
    )
    assert prediction.void_lookups == outcome.void_lookups, (
        "%s: static %d voids, dynamic %d"
        % (policy.testid, prediction.void_lookups, outcome.void_lookups)
    )
    # The walker assumes no IP-dependent mechanism matches — exactly the
    # designed-to-fail situation, except where a policy deliberately
    # authorizes the probe (dynamic PASS) or uses macros (complete=False).
    if prediction.complete and prediction.result is not None and outcome.result is not SpfResult.PASS:
        assert prediction.result is outcome.result, (
            "%s: static result %s, dynamic %s"
            % (policy.testid, prediction.result, outcome.result)
        )


# -- campaign pre-flight ---------------------------------------------------


class TestPreflight:
    def test_all_39_policies_pass_preflight(self):
        audits = preflight_policies(POLICIES)
        assert len(audits) == 39
        assert audits["t02"].prediction.first_abort == "lookup_limit"
        assert audits["t02"].prediction.lookup_terms == 46

    def test_policy_without_spf_fails_preflight(self):
        from repro.core.policies import TestPolicy

        broken = TestPolicy("tx", "no_spf", "publishes nothing", {(): [("A", "192.0.2.1")]})
        with pytest.raises(PreflightError, match="tx"):
            preflight_policies([broken])

    def test_audit_policy_cycle(self):
        from repro.core.policies import policy_by_id

        audit = audit_policy(policy_by_id("t18"))
        assert audit.prediction.cycle
        assert audit.report.has("SPF013")
