"""Tests for the differential trace-conformance checker
(repro.lint.tracecheck).

Two halves: the tier-1 guarantee that a clean, full campaign run over
all 39 probe policies (plus NotifyEmail) produces ZERO findings, and one
injected-fault test per TRACE rule proving the rule actually fires —
and fires alone."""

import pytest

from repro.core.campaign import (
    NotifyEmailCampaign,
    ProbeCampaign,
    Testbed,
    apply_reputation_effects,
)
from repro.core.datasets import DatasetSpec, generate_universe
from repro.core.policies import NOTIFY_POLICY, POLICIES
from repro.core.preflight import preflight_policies
from repro.core.querylog import QueryIndex, attribute_queries_with_stats
from repro.core.synth import SynthConfig
from repro.dns.name import Name
from repro.dns.rdata import RdataType
from repro.dns.server import QueryLogEntry
from repro.lint.spfgraph import StaticPrediction
from repro.lint.tracecheck import build_footprint, check_index

CONFIG = SynthConfig()


# -- footprint derivation ------------------------------------------------


class TestFootprints:
    def test_notify_footprint_matches_policy(self):
        fp = build_footprint(NOTIFY_POLICY, CONFIG)
        by_labels = {(p.experiment, p.labels): p for p in fp.patterns}
        assert by_labels[("notify", ())].qtypes == frozenset({RdataType.TXT})
        # The include chain and the a:mta target, all rooted at the base.
        for sub in (("l1",), ("l2",), ("l3",)):
            assert by_labels[("notify", sub)].root == ("notify", ())
        assert by_labels[("notify", ("mta",))].qtypes == frozenset(
            {RdataType.A, RdataType.AAAA}
        )
        # DMARC / DKIM discovery names are always admissible.
        assert by_labels[("notify", ("_dmarc",))].root is None
        assert ("notify", ("*", "_domainkey")) in by_labels

    def test_every_policy_footprint_builds(self):
        for policy in POLICIES:
            fp = build_footprint(policy, CONFIG)
            assert fp.match("probe", ()) != [], policy.testid

    def test_v6_targets_belong_to_the_probe_walk(self):
        fp = build_footprint(next(p for p in POLICIES if p.testid == "t10"), CONFIG)
        v6 = [p for p in fp.patterns if p.experiment == "v6" and p.role == "mechanism"]
        assert v6 and all(p.root == ("probe", ()) for p in v6)

    def test_macro_targets_become_wildcards(self):
        fp = build_footprint(next(p for p in POLICIES if p.testid == "t20"), CONFIG)
        wild = [p for p in fp.patterns if not p.concrete and p.labels[0] == "**"]
        assert wild, "exists: macro must admit arbitrary expansion labels"
        # Any label stack in front of the static tail matches.
        tail = wild[0].labels[1:]
        assert fp.match("probe", ("250", "113", "0", "203") + tail)


# -- the clean-run guarantee ---------------------------------------------


@pytest.fixture(scope="module")
def clean_run():
    universe = generate_universe(DatasetSpec.notify_email(scale=0.005), seed=501)
    testbed = Testbed(universe, seed=502)
    NotifyEmailCampaign(testbed).run()
    apply_reputation_effects(universe, seed=503)
    ProbeCampaign(testbed, "NotifyMX", start_time=5e6).run()
    attributed, stats = attribute_queries_with_stats(
        testbed.synth.query_log, testbed.synth_config
    )
    return testbed, QueryIndex(attributed), stats


class TestCleanRun:
    def test_zero_findings_over_all_policies(self, clean_run):
        testbed, index, stats = clean_run
        testids = {testid for _, testid in index.pairs()}
        assert testids >= {policy.testid for policy in POLICIES}, "probe coverage"
        assert "notify" in testids
        result = check_index(index, config=testbed.synth_config, stats=stats)
        assert result.pairs_checked == len(index.pairs())
        assert result.queries_checked == len(index)
        assert result.clean, result.report.render_text()

    def test_zero_findings_with_preflight_predictions(self, clean_run):
        testbed, index, stats = clean_run
        audits = preflight_policies(list(POLICIES) + [NOTIFY_POLICY])
        predictions = {testid: audit.prediction for testid, audit in audits.items()}
        result = check_index(
            index, config=testbed.synth_config, stats=stats, predictions=predictions
        )
        assert result.clean, result.report.render_text()


# -- injected faults: each rule fires, and fires alone --------------------


def _entry(name, qtype, ts=1.0, client="203.0.113.9", transport="udp"):
    return QueryLogEntry(
        timestamp=ts, qname=Name(name), qtype=qtype, transport=transport, client_ip=client
    )


def _index(entries):
    attributed, stats = attribute_queries_with_stats(entries, CONFIG)
    return QueryIndex(attributed), stats


PROBE_ROOT = "t01.mta1.%s" % CONFIG.probe_suffix
NOTIFY_ROOT = "d0.%s" % CONFIG.notify_suffix


class TestInjectedFaults:
    def test_trace001_impossible_name(self):
        index, _ = _index(
            [
                _entry(PROBE_ROOT, RdataType.TXT, ts=1.0),
                _entry("no.such.name.%s" % PROBE_ROOT, RdataType.TXT, ts=2.0),
            ]
        )
        result = check_index(index, config=CONFIG)
        assert result.report.codes() == ["TRACE001"]

    def test_trace002_impossible_qtype(self):
        index, _ = _index([_entry(NOTIFY_ROOT, RdataType.MX, ts=1.0)])
        result = check_index(index, config=CONFIG)
        assert result.report.codes() == ["TRACE002"]

    def test_trace003_negative_timestamp(self):
        index, _ = _index([_entry(PROBE_ROOT, RdataType.TXT, ts=-4.0)])
        result = check_index(index, config=CONFIG)
        assert result.report.codes() == ["TRACE003"]

    def test_trace004_v6_suffix_over_ipv4(self):
        v6_name = "l1.t10.mta1.%s" % CONFIG.v6_suffix
        index, _ = _index(
            [
                _entry("t10.mta1.%s" % CONFIG.probe_suffix, RdataType.TXT, ts=1.0),
                # An IPv4 client address: impossible, the v6 suffix is
                # delegated to the server's IPv6 address only.
                _entry(v6_name, RdataType.TXT, ts=2.0, client="203.0.113.9"),
            ]
        )
        result = check_index(index, config=CONFIG)
        assert result.report.codes() == ["TRACE004"]

    def test_trace004_silent_over_ipv6(self):
        v6_name = "l1.t10.mta1.%s" % CONFIG.v6_suffix
        index, _ = _index(
            [
                _entry("t10.mta1.%s" % CONFIG.probe_suffix, RdataType.TXT, ts=1.0),
                _entry(v6_name, RdataType.TXT, ts=2.0, client="2001:db8:9::9"),
            ]
        )
        assert check_index(index, config=CONFIG).clean

    def test_trace005_walk_without_root_fetch(self):
        # The include target's TXT appears, but the L0 record that names
        # it was never fetched: no validator behaves that way.
        index, _ = _index([_entry("l1.%s" % NOTIFY_ROOT, RdataType.TXT, ts=1.0)])
        result = check_index(index, config=CONFIG)
        assert result.report.codes() == ["TRACE005"]

    def test_trace006_footprint_exceeds_stale_prediction(self):
        # Simulates catalogue drift: the deployed policy walks two
        # mechanism targets while the (stale) static audit promised one.
        index, _ = _index(
            [
                _entry(NOTIFY_ROOT, RdataType.TXT, ts=1.0),
                _entry("l1.%s" % NOTIFY_ROOT, RdataType.TXT, ts=2.0),
                _entry("mta.%s" % NOTIFY_ROOT, RdataType.A, ts=3.0),
            ]
        )
        stale = StaticPrediction(
            lookup_terms=1, void_lookups=0, first_abort=None, result=None,
            cycle=False, complete=True,
        )
        result = check_index(index, config=CONFIG, predictions={"notify": stale})
        assert result.report.codes() == ["TRACE006"]

    def test_trace007_unattributable_in_suffix_traffic(self):
        # One label under the probe suffix cannot carry (mtaid, testid).
        index, stats = _index([_entry("orphan.%s" % CONFIG.probe_suffix, RdataType.TXT)])
        assert stats.dropped_short == 1
        result = check_index(index, config=CONFIG, stats=stats)
        assert result.report.codes() == ["TRACE007"]

    def test_trace008_unknown_testid(self):
        index, _ = _index([_entry("zz99.mta1.%s" % CONFIG.probe_suffix, RdataType.TXT)])
        result = check_index(index, config=CONFIG)
        assert result.report.codes() == ["TRACE008"]

    def test_clean_pair_stays_clean(self):
        index, stats = _index(
            [
                _entry(NOTIFY_ROOT, RdataType.TXT, ts=1.0),
                _entry("l1.%s" % NOTIFY_ROOT, RdataType.TXT, ts=2.0),
                _entry("mta.%s" % NOTIFY_ROOT, RdataType.A, ts=3.0),
                _entry("_dmarc.%s" % NOTIFY_ROOT, RdataType.TXT, ts=4.0),
                _entry("sel._domainkey.%s" % NOTIFY_ROOT, RdataType.TXT, ts=5.0),
            ]
        )
        assert check_index(index, config=CONFIG, stats=stats).clean
