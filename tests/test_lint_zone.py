"""Tests for whole-zone auditing (repro.lint.zonelint) and Zone.rrsets."""

from repro.dns.rdata import ARecord, RdataType, TxtRecord
from repro.dns.zone import Zone
from repro.lint import audit_zone
from repro.lint.spfgraph import SpfLimits

# A real (precomputed) 1024-bit RSA public key: the zone auditor now
# parses DKIM keys for usability instead of checking name existence.
KEY_B64 = (
    "MIGfMA0GCSqGSIb3DQEBAQUAA4GNADCBiQKBgQCYNXSKOMa7s+u0yyI2QaWNRUqLcIV9LagA"
    "hfCYOqANu7t8Tse2SowWfTJS2um1V0MlCZuLXmpGm6BjxCQTSnLzmG3kfVtB55zN5nHrRZ1U"
    "qnwHEZHmMrbjNS4f8Vx4lx2F7IWAVkEYI13mQBciatfms4CQQ8FmHCns8oOtdDY/1QIDAQAB"
)


def _zone():
    zone = Zone("example.com")
    zone.add("example.com", TxtRecord("v=spf1 include:spf.example.com -all"))
    zone.add("spf.example.com", TxtRecord("v=spf1 ip4:192.0.2.0/24 ?all"))
    zone.add("_dmarc.example.com", TxtRecord("v=DMARC1; p=reject"))
    zone.add("s1._domainkey.example.com", TxtRecord("v=DKIM1; k=rsa; p=%s" % KEY_B64))
    return zone


class TestRrsets:
    def test_deterministic_iteration(self):
        zone = _zone()
        first = [(str(o), t) for o, t, _ in zone.rrsets()]
        second = [(str(o), t) for o, t, _ in zone.rrsets()]
        assert first == second
        assert (str(zone.origin), RdataType.TXT) in first

    def test_yields_all_records(self):
        zone = _zone()
        total = sum(len(records) for _, _, records in zone.rrsets())
        assert total == zone.record_count()


class TestZoneAudit:
    def test_clean_zone(self):
        audit = audit_zone(_zone())
        assert audit.clean
        assert set(audit.spf_audits) == {"example.com", "spf.example.com"}
        assert audit.spf_audits["example.com"].prediction.lookup_terms == 1
        # spf.example.com itself publishes SPF but no DMARC of its own.
        assert audit.report.has("DMARC001")

    def test_spf_graph_findings_bubble_up(self):
        zone = Zone("example.com")
        zone.add("example.com", TxtRecord("v=spf1 include:loop.example.com -all"))
        zone.add("loop.example.com", TxtRecord("v=spf1 include:example.com ?all"))
        audit = audit_zone(zone)
        assert audit.report.has("SPF013")
        assert not audit.clean

    def test_missing_dmarc(self):
        zone = Zone("example.com")
        zone.add("example.com", TxtRecord("v=spf1 -all"))
        audit = audit_zone(zone)
        assert audit.report.has("DMARC001")

    def test_p_none_and_pct(self):
        zone = Zone("example.com")
        zone.add("example.com", TxtRecord("v=spf1 -all"))
        zone.add("_dmarc.example.com", TxtRecord("v=DMARC1; p=none; pct=50"))
        audit = audit_zone(zone)
        assert audit.report.has("DMARC002")
        assert audit.report.has("DMARC005")

    def test_weak_subdomain_policy(self):
        zone = Zone("example.com")
        zone.add("example.com", TxtRecord("v=spf1 -all"))
        zone.add("_dmarc.example.com", TxtRecord("v=DMARC1; p=reject; sp=none"))
        audit = audit_zone(zone)
        assert audit.report.has("DMARC006")

    def test_multiple_dmarc_records(self):
        zone = Zone("example.com")
        zone.add("example.com", TxtRecord("v=spf1 -all"))
        zone.add("_dmarc.example.com", TxtRecord("v=DMARC1; p=none"))
        zone.add("_dmarc.example.com", TxtRecord("v=DMARC1; p=reject"))
        audit = audit_zone(zone)
        assert audit.report.has("DMARC004")

    def test_unparseable_dmarc(self):
        zone = Zone("example.com")
        zone.add("example.com", TxtRecord("v=spf1 -all"))
        zone.add("_dmarc.example.com", TxtRecord("v=DMARC1; p=bogus"))
        audit = audit_zone(zone)
        assert audit.report.has("DMARC003")

    def test_unknown_tag(self):
        zone = Zone("example.com")
        zone.add("example.com", TxtRecord("v=spf1 -all"))
        zone.add("_dmarc.example.com", TxtRecord("v=DMARC1; p=reject; moo=cow"))
        audit = audit_zone(zone)
        assert audit.report.has("DMARC008")

    def test_alignment_impossible(self):
        zone = Zone("example.com")
        # DMARC published for a domain with neither SPF nor DKIM keys.
        zone.add("_dmarc.ghost.example.com", TxtRecord("v=DMARC1; p=reject"))
        audit = audit_zone(zone)
        assert audit.report.has("DMARC007")

    def test_alignment_possible_via_dkim(self):
        zone = Zone("example.com")
        zone.add("_dmarc.signed.example.com", TxtRecord("v=DMARC1; p=reject"))
        zone.add("s1._domainkey.signed.example.com", TxtRecord("v=DKIM1; p=%s" % KEY_B64))
        audit = audit_zone(zone)
        assert not audit.report.has("DMARC007")

    def test_non_spf_txt_ignored(self):
        zone = Zone("example.com")
        zone.add("example.com", TxtRecord("google-site-verification=abc123"))
        audit = audit_zone(zone)
        assert audit.spf_audits == {}
        assert audit.report.diagnostics == []

    def test_custom_limits(self):
        zone = Zone("example.com")
        zone.add("example.com", TxtRecord("v=spf1 include:a.example.com -all"))
        zone.add("a.example.com", TxtRecord("v=spf1 ?all"))
        audit = audit_zone(zone, limits=SpfLimits(max_lookups=0))
        assert audit.spf_audits["example.com"].prediction.first_abort == "lookup_limit"

    def test_out_of_zone_include_is_lower_bound(self):
        zone = Zone("example.com")
        zone.add("example.com", TxtRecord("v=spf1 include:_spf.google.com -all"))
        audit = audit_zone(zone)
        spf = audit.spf_audits["example.com"]
        assert spf.report.has("SPF028")
        assert not spf.prediction.complete

    def test_a_record_presence_counts_voids(self):
        zone = Zone("example.com")
        zone.add("example.com", TxtRecord("v=spf1 a:dead.example.com mx:alive.example.com -all"))
        zone.add("alive.example.com", ARecord("192.0.2.5"))
        audit = audit_zone(zone)
        spf = audit.spf_audits["example.com"]
        # a:dead -> NXDOMAIN void; mx:alive -> NODATA (no MX rrset) void.
        assert spf.prediction.void_lookups == 2
        assert spf.report.codes().count("SPF017") == 2
