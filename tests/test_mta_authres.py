"""Tests for Authentication-Results headers (RFC 8601) and their stamping."""

import pytest

from repro.dkim import DkimSigner, KeyRecord, generate_keypair
from repro.dns.rdata import TxtRecord
from repro.mta.authres import AuthenticationResults, MethodResult
from repro.mta.behavior import MtaBehavior
from repro.mta.receiver import ReceivingMta
from repro.smtp.client import SmtpClient
from repro.smtp.message import EmailMessage
from tests.helpers import World

KEYPAIR = generate_keypair(1024, seed=91)


class TestSerialisation:
    def test_minimal(self):
        results = AuthenticationResults("mx.example.com")
        assert results.to_header_value() == "mx.example.com; none"

    def test_full_roundtrip(self):
        results = AuthenticationResults("mx.example.com")
        results.add("spf", "pass", mailfrom="a@b.example")
        results.add("dkim", "fail", d="b.example")
        entry = results.add("dmarc", "pass")
        entry.add_property("header", "from", "b.example")
        text = results.to_header_value()
        parsed = AuthenticationResults.from_header_value(text)
        assert parsed.authserv_id == "mx.example.com"
        assert parsed.result_for("spf").result == "pass"
        assert ("smtp", "mailfrom", "a@b.example") in parsed.result_for("spf").properties
        assert parsed.result_for("dkim").result == "fail"
        assert ("header", "from", "b.example") in parsed.result_for("dmarc").properties

    def test_reason_quoted(self):
        entry = MethodResult("dmarc", "fail", reason='policy "reject"')
        assert 'reason="policy \'reject\'"' in entry.to_text()

    def test_reason_roundtrip(self):
        results = AuthenticationResults("mx.test")
        results.results.append(MethodResult("spf", "fail", reason="not authorized"))
        parsed = AuthenticationResults.from_header_value(results.to_header_value())
        assert parsed.result_for("spf").reason == "not authorized"

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            AuthenticationResults.from_header_value("")
        with pytest.raises(ValueError):
            AuthenticationResults.from_header_value("mx.test; !!!garbage!!!")

    def test_result_for_missing(self):
        assert AuthenticationResults("x").result_for("spf") is None


class TestStamping:
    MTA_IP = "198.51.100.80"
    CLIENT_IP = "203.0.113.80"

    @pytest.fixture
    def world(self):
        world = World(seed=93)
        zone = world.zone("sender.example")
        zone.add("sender.example", TxtRecord("v=spf1 ip4:%s -all" % self.CLIENT_IP))
        zone.add(
            "sel._domainkey.sender.example",
            TxtRecord(KeyRecord(public_key_b64=KEYPAIR.public.to_base64()).to_text()),
        )
        zone.add("_dmarc.sender.example", TxtRecord("v=DMARC1; p=quarantine"))
        world.network.add_address(self.CLIENT_IP)
        return world

    def _deliver(self, world, behavior):
        mta = ReceivingMta(
            "mx.rcpt.example", world.network, world.directory, behavior, ipv4=self.MTA_IP
        )
        mta.attach()
        message = EmailMessage(
            [("From", "a@sender.example"), ("To", "b@rcpt.example"), ("Subject", "s"),
             ("Date", "d"), ("Message-ID", "<1@s>")],
            "hello\r\n",
        )
        DkimSigner("sender.example", "sel", KEYPAIR.private).sign(message)
        client, t = SmtpClient.connect(world.network, self.CLIENT_IP, self.MTA_IP, 0.0)
        _, t = client.ehlo("c.sender.example", t)
        _, t = client.mail("a@sender.example", t)
        _, t = client.rcpt("b@rcpt.example", t)
        _, t = client.data_command(t)
        reply, t = client.send_message(message, t)
        client.abort(t)
        assert reply.code == 250
        return mta.deliveries[0].message

    def test_full_validator_stamps_all_three(self, world):
        delivered = self._deliver(world, MtaBehavior(accepts_any_recipient=True))
        value = delivered.get_header("Authentication-Results")
        assert value is not None
        parsed = AuthenticationResults.from_header_value(value)
        assert parsed.authserv_id == "mx.rcpt.example"
        assert parsed.result_for("spf").result == "pass"
        assert parsed.result_for("dkim").result == "pass"
        assert parsed.result_for("dmarc").result == "pass"

    def test_header_is_topmost(self, world):
        delivered = self._deliver(world, MtaBehavior(accepts_any_recipient=True))
        assert delivered.headers[0][0] == "Authentication-Results"

    def test_non_validator_stamps_nothing(self, world):
        behavior = MtaBehavior(
            accepts_any_recipient=True,
            validates_spf=False,
            validates_dkim=False,
            validates_dmarc=False,
        )
        delivered = self._deliver(world, behavior)
        assert delivered.get_header("Authentication-Results") is None

    def test_spf_only_validator(self, world):
        behavior = MtaBehavior(
            accepts_any_recipient=True, validates_dkim=False, validates_dmarc=False
        )
        delivered = self._deliver(world, behavior)
        parsed = AuthenticationResults.from_header_value(
            delivered.get_header("Authentication-Results")
        )
        assert parsed.result_for("spf") is not None
        assert parsed.result_for("dkim") is None
        assert parsed.result_for("dmarc") is None
