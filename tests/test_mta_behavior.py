"""Tests for MTA behaviour profiles and their config derivation."""

from repro.mta.behavior import MtaBehavior, SpfTrigger


class TestDefaults:
    def test_default_is_full_strict_validator(self):
        behavior = MtaBehavior()
        assert behavior.validates_spf and behavior.validates_dkim and behavior.validates_dmarc
        assert behavior.spf_trigger is SpfTrigger.ON_MAIL
        assert not behavior.spf_fetch_only
        assert behavior.blacklist_rejection is None

    def test_validates_anything(self):
        assert MtaBehavior().validates_anything
        silent = MtaBehavior(validates_spf=False, validates_dkim=False, validates_dmarc=False)
        assert not silent.validates_anything


class TestSpfConfigDerivation:
    def test_strict_defaults(self):
        config = MtaBehavior().spf_config()
        assert config.max_dns_mechanisms == 10
        assert config.max_void_lookups == 2
        assert config.max_mx_addresses == 10
        assert not config.tolerant_syntax
        assert not config.parallel_lookups
        assert config.on_multiple_records == "permerror"

    def test_deviations_flow_through(self):
        behavior = MtaBehavior(
            spf_max_dns_mechanisms=None,
            spf_max_void_lookups=None,
            spf_tolerant_syntax=True,
            spf_ignore_child_permerror=True,
            spf_parallel_lookups=True,
            spf_mx_a_fallback=True,
            spf_on_multiple_records="first",
            spf_timeout=20.0,
            spf_fetch_only=True,
        )
        config = behavior.spf_config()
        assert config.max_dns_mechanisms is None
        assert config.max_void_lookups is None
        assert config.tolerant_syntax
        assert config.ignore_child_permerror
        assert config.parallel_lookups
        assert config.mx_a_fallback
        assert config.on_multiple_records == "first"
        assert config.overall_timeout == 20.0
        assert config.fetch_only


class TestResolverConfigDerivation:
    def test_capabilities_flow_through(self):
        behavior = MtaBehavior(
            resolver_tcp_fallback=False,
            resolver_ipv6_capable=False,
            resolver_prefer_ipv6=False,
        )
        config = behavior.resolver_config()
        assert not config.tcp_fallback
        assert not config.ipv6_capable
