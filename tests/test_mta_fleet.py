"""Statistical tests for the behaviour sampler (seeded, deterministic)."""

import random
from collections import Counter

import pytest

from repro.mta.behavior import SpfTrigger
from repro.mta.fleet import (
    NOTIFY_EMAIL_PROFILE,
    NOTIFY_MX_PROFILE,
    TABLE4_COMBO_WEIGHTS,
    TWO_WEEK_MX_PROFILE,
    sample_behavior,
)

N = 4000


def _sample_many(profile, n=N, seed=9):
    rng = random.Random(seed)
    return [sample_behavior(rng, profile) for _ in range(n)]


class TestDeterminism:
    def test_same_seed_same_fleet(self):
        a = _sample_many(NOTIFY_EMAIL_PROFILE, n=50, seed=3)
        b = _sample_many(NOTIFY_EMAIL_PROFILE, n=50, seed=3)
        assert [x.__dict__ for x in a] == [y.__dict__ for y in b]

    def test_forced_combo(self):
        rng = random.Random(1)
        behavior = sample_behavior(rng, NOTIFY_EMAIL_PROFILE, combo=(False, True, False))
        assert (behavior.validates_spf, behavior.validates_dkim, behavior.validates_dmarc) == (
            False, True, False,
        )


class TestMarginals:
    """Sampled fractions should sit near the configured probabilities."""

    @pytest.fixture(scope="class")
    def fleet(self):
        return _sample_many(NOTIFY_EMAIL_PROFILE)

    def _rate(self, fleet, predicate, subset=None):
        pool = [b for b in fleet if subset(b)] if subset else fleet
        return sum(1 for b in pool if predicate(b)) / len(pool)

    def test_combo_distribution_matches_table4(self, fleet):
        counts = Counter(
            (b.validates_spf, b.validates_dkim, b.validates_dmarc) for b in fleet
        )
        total_weight = sum(TABLE4_COMBO_WEIGHTS.values())
        for combo, weight in TABLE4_COMBO_WEIGHTS.items():
            expected = weight / total_weight
            assert abs(counts[combo] / N - expected) < 0.03

    def test_spf_deviations_conditioned_on_validating(self, fleet):
        validators = lambda b: b.validates_spf
        assert abs(self._rate(fleet, lambda b: b.spf_parallel_lookups, validators) - 0.03) < 0.015
        assert abs(self._rate(fleet, lambda b: b.checks_helo, validators) - 0.05) < 0.02
        assert abs(self._rate(fleet, lambda b: b.spf_tolerant_syntax, validators) - 0.055) < 0.02
        assert abs(self._rate(fleet, lambda b: b.spf_mx_a_fallback, validators) - 0.14) < 0.03

    def test_non_validators_have_default_spf_knobs(self, fleet):
        for behavior in fleet:
            if not behavior.validates_spf:
                assert behavior.spf_trigger is SpfTrigger.ON_MAIL
                assert not behavior.spf_parallel_lookups

    def test_post_delivery_fraction(self, fleet):
        validators = [b for b in fleet if b.validates_spf]
        fraction = sum(
            1 for b in validators if b.spf_trigger is SpfTrigger.POST_DELIVERY
        ) / len(validators)
        assert abs(fraction - 0.17) < 0.03

    def test_lookup_limit_modes(self, fleet):
        validators = [b for b in fleet if b.validates_spf]
        enforced = sum(1 for b in validators if b.spf_max_dns_mechanisms == 10) / len(validators)
        unlimited_no_timeout = sum(
            1 for b in validators if b.spf_max_dns_mechanisms is None and b.spf_timeout is None
        ) / len(validators)
        assert abs(enforced - 0.61) < 0.04
        assert abs(unlimited_no_timeout - 0.28) < 0.04

    def test_ipv6_resolver_fraction(self, fleet):
        assert abs(self._rate(fleet, lambda b: b.resolver_ipv6_capable) - 0.49) < 0.03

    def test_tcp_fallback_nearly_universal(self, fleet):
        missing = sum(1 for b in fleet if not b.resolver_tcp_fallback)
        assert missing < 0.01 * N

    def test_child_permerror_never_combined_with_tolerant(self, fleet):
        for behavior in fleet:
            assert not (behavior.spf_tolerant_syntax and behavior.spf_ignore_child_permerror)

    def test_acceptance_delays_sampled(self, fleet):
        delays = [b.acceptance_delay for b in fleet]
        assert min(delays) >= 0.2
        assert max(delays) <= 240.0
        under_five = sum(1 for d in delays if d < 5.0) / N
        assert 0.40 < under_five < 0.70


class TestProfiles:
    def test_notify_mx_blacklisting(self):
        fleet = _sample_many(NOTIFY_MX_PROFILE)
        spam = sum(1 for b in fleet if b.blacklist_rejection == "spam") / N
        bl = sum(1 for b in fleet if b.blacklist_rejection == "blacklist") / N
        assert abs(spam - 0.27) < 0.03
        assert abs(bl - 0.03) < 0.01

    def test_notify_email_never_blacklists(self):
        fleet = _sample_many(NOTIFY_EMAIL_PROFILE)
        assert all(b.blacklist_rejection is None for b in fleet)

    def test_two_week_mx_heavier_post_delivery(self):
        fleet = _sample_many(TWO_WEEK_MX_PROFILE)
        validators = [b for b in fleet if b.validates_spf]
        fraction = sum(
            1 for b in validators if b.spf_trigger is SpfTrigger.POST_DELIVERY
        ) / len(validators)
        assert fraction > 0.3


def test_weights_must_be_positive():
    from repro.mta.fleet import _weighted

    with pytest.raises(ValueError):
        _weighted(random.Random(0), [("a", 0.0)])
