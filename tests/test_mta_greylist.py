"""Tests for greylisting and sender retry behaviour."""

import pytest

from repro.dns.rdata import ARecord, MxRecord, TxtRecord
from repro.mta.behavior import MtaBehavior, SpfTrigger
from repro.mta.receiver import ReceivingMta
from repro.mta.sender import SendingMta
from repro.smtp.client import SmtpClient
from repro.smtp.message import EmailMessage
from tests.helpers import World

MTA_IP = "198.51.100.85"
CLIENT_IP = "203.0.113.85"


@pytest.fixture
def world():
    world = World(seed=111)
    zone = world.zone("sender.example")
    zone.add("sender.example", TxtRecord("v=spf1 ip4:%s -all" % CLIENT_IP))
    world.network.add_address(CLIENT_IP)
    return world


def _greylisting_mta(world, **kwargs):
    behavior = MtaBehavior(
        accepts_any_recipient=True,
        greylists=True,
        validates_dkim=False,
        validates_dmarc=False,
        **kwargs,
    )
    mta = ReceivingMta("mx.rcpt.example", world.network, world.directory, behavior, ipv4=MTA_IP)
    mta.attach()
    return mta


def _rcpt_round(world, t, sender="a@sender.example", rcpt="b@rcpt.example"):
    client, t = SmtpClient.connect(world.network, CLIENT_IP, MTA_IP, t)
    _, t = client.ehlo("c.sender.example", t)
    _, t = client.mail(sender, t)
    reply, t = client.rcpt(rcpt, t)
    client.abort(t)
    return reply, t


class TestGreylisting:
    def test_first_contact_deferred(self, world):
        _greylisting_mta(world)
        reply, _ = _rcpt_round(world, 0.0)
        assert reply.code == 451
        assert "greylist" in reply.text.lower()

    def test_retry_after_window_accepted(self, world):
        _greylisting_mta(world)
        _, t = _rcpt_round(world, 0.0)
        reply, _ = _rcpt_round(world, t + 400.0)
        assert reply.code == 250

    def test_too_early_retry_still_deferred(self, world):
        _greylisting_mta(world)
        _, t = _rcpt_round(world, 0.0)
        reply, _ = _rcpt_round(world, t + 30.0)
        assert reply.code == 451

    def test_greylist_keyed_per_triple(self, world):
        _greylisting_mta(world)
        _, t = _rcpt_round(world, 0.0, rcpt="one@rcpt.example")
        reply, _ = _rcpt_round(world, t + 400.0, rcpt="two@rcpt.example")
        assert reply.code == 451  # different recipient: new triple

    def test_mail_time_spf_runs_before_greylist_rejection(self, world):
        """The paper's outlier mechanism: the first (rejected) attempt
        already triggers the SPF lookup."""
        mta = _greylisting_mta(world, spf_trigger=SpfTrigger.ON_MAIL)
        _rcpt_round(world, 0.0)
        assert [v.kind for v in mta.validations] == ["spf"]
        assert len(world.server.queries_under("sender.example")) >= 1


class TestSenderRetry:
    @pytest.fixture
    def delivery_world(self, world):
        zone = world.server.zones[0]  # sender.example zone holds rcpt MX too
        rcpt_zone = world.zone("mail-rcpt.example")
        rcpt_zone.add("mail-rcpt.example", MxRecord(10, "mx.mail-rcpt.example"))
        rcpt_zone.add("mx.mail-rcpt.example", ARecord(MTA_IP))
        return world

    def _message(self):
        return EmailMessage(
            [("From", "a@sender.example"), ("To", "b@mail-rcpt.example"), ("Subject", "s")],
            "body\r\n",
        )

    def test_retry_defeats_greylisting(self, delivery_world):
        world = delivery_world
        mta = ReceivingMta(
            "mx.mail-rcpt.example", world.network, world.directory,
            MtaBehavior(accepts_any_recipient=True, greylists=True,
                        validates_dkim=False, validates_dmarc=False),
            ipv4=MTA_IP,
        )
        mta.attach()
        sender = SendingMta("out.sender.example", world.network, world.directory, ipv4=CLIENT_IP)
        record, t = sender.send(self._message(), "a@sender.example", "b@mail-rcpt.example", 0.0, sign=False)
        assert record.success
        assert len(record.attempts) == 2  # original + one retry
        assert record.t_delivered >= 900.0  # a full retry interval later
        assert len(mta.deliveries) == 1

    def test_no_retry_budget_fails(self, delivery_world):
        world = delivery_world
        ReceivingMta(
            "mx.mail-rcpt.example", world.network, world.directory,
            MtaBehavior(accepts_any_recipient=True, greylists=True,
                        validates_dkim=False, validates_dmarc=False),
            ipv4=MTA_IP,
        ).attach()
        sender = SendingMta("out.sender.example", world.network, world.directory, ipv4=CLIENT_IP)
        record, _ = sender.send(
            self._message(), "a@sender.example", "b@mail-rcpt.example", 0.0,
            sign=False, max_retries=0,
        )
        assert not record.success
        assert record.reply.code == 451

    def test_permanent_failure_not_retried(self, delivery_world):
        world = delivery_world
        ReceivingMta(
            "mx.mail-rcpt.example", world.network, world.directory,
            MtaBehavior(accepts_any_recipient=False, accepts_postmaster=False,
                        validates_dkim=False, validates_dmarc=False),
            ipv4=MTA_IP,
        ).attach()
        sender = SendingMta("out.sender.example", world.network, world.directory, ipv4=CLIENT_IP)
        record, _ = sender.send(self._message(), "a@sender.example", "b@mail-rcpt.example", 0.0, sign=False)
        assert not record.success
        assert len(record.attempts) == 1  # 550 is final; no retry pass
