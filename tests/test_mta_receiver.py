"""Tests for the receiving MTA: triggers, whitelisting, rejection, and the
full SPF/DKIM/DMARC pipeline."""

import pytest

from repro.dkim import DkimSigner, KeyRecord, generate_keypair
from repro.dns.rdata import TxtRecord
from repro.mta.behavior import MtaBehavior, SpfTrigger
from repro.mta.receiver import ReceivingMta
from repro.smtp.client import SmtpClient
from repro.smtp.message import EmailMessage
from tests.helpers import World

KEYPAIR = generate_keypair(1024, seed=55)

MTA_IP = "198.51.100.30"
CLIENT_IP = "203.0.113.10"
CLIENT_IP6 = "2001:db8:5::10"


@pytest.fixture
def world():
    world = World(seed=61)
    zone = world.zone("sender.example")
    zone.add("sender.example", TxtRecord("v=spf1 ip4:%s ip6:%s -all" % (CLIENT_IP, CLIENT_IP6)))
    zone.add(
        "sel._domainkey.sender.example",
        TxtRecord(KeyRecord(public_key_b64=KEYPAIR.public.to_base64()).to_text()),
    )
    zone.add("_dmarc.sender.example", TxtRecord("v=DMARC1; p=reject"))
    world.network.add_address(CLIENT_IP)
    return world


def _mta(world, behavior=None, ipv6=None):
    mta = ReceivingMta(
        "mx.rcpt.example",
        world.network,
        world.directory,
        behavior=behavior or MtaBehavior(accepts_any_recipient=True),
        ipv4=MTA_IP,
        ipv6=ipv6,
    )
    mta.attach()
    return mta


def _converse(world, t=0.0, sender="user@sender.example", rcpt="bob@rcpt.example", message=True):
    client, t = SmtpClient.connect(world.network, CLIENT_IP, MTA_IP, t)
    reply, t = client.ehlo("client.sender.example", t)
    replies = {"ehlo": reply}
    reply, t = client.mail(sender, t)
    replies["mail"] = reply
    if reply.is_success:
        reply, t = client.rcpt(rcpt, t)
        replies["rcpt"] = reply
        if reply.is_success and message:
            reply, t = client.data_command(t)
            replies["data"] = reply
            msg = EmailMessage(
                [("From", sender), ("To", rcpt), ("Subject", "s"), ("Date", "d"), ("Message-ID", "<x@y>")],
                "body\r\n",
            )
            reply, t = client.send_message(msg, t)
            replies["message"] = reply
    client.abort(t)
    return replies, t


def _validation_kinds(mta):
    return [record.kind for record in mta.validations]


class TestSpfTriggers:
    @pytest.mark.parametrize(
        "trigger", [SpfTrigger.ON_MAIL, SpfTrigger.ON_RCPT, SpfTrigger.ON_DATA]
    )
    def test_spf_runs_once_per_envelope(self, world, trigger):
        mta = _mta(
            world,
            MtaBehavior(
                accepts_any_recipient=True,
                validates_dkim=False,
                validates_dmarc=False,
                spf_trigger=trigger,
            ),
        )
        _converse(world)
        spf_records = [r for r in mta.validations if r.kind == "spf"]
        assert len(spf_records) == 1
        assert spf_records[0].result == "pass"

    def test_trigger_timing_is_observable(self, world):
        """A later trigger point means a later policy-query arrival at the
        authoritative server — the signal the paper's timing analysis uses."""
        arrival_times = {}
        for trigger in (SpfTrigger.ON_MAIL, SpfTrigger.ON_DATA):
            world.server.clear_log()
            _mta(
                world,
                MtaBehavior(accepts_any_recipient=True, spf_trigger=trigger,
                            validates_dkim=False, validates_dmarc=False),
            )
            _converse(world)
            world.network.unlisten_tcp(MTA_IP, 25)
            entries = [e for e in world.server.query_log if str(e.qname) == "sender.example."]
            assert len(entries) == 1
            arrival_times[trigger] = entries[0].timestamp
        assert arrival_times[SpfTrigger.ON_DATA] > arrival_times[SpfTrigger.ON_MAIL]

    def test_post_delivery_validation_happens_after_acceptance(self, world):
        behavior = MtaBehavior(
            accepts_any_recipient=True,
            spf_trigger=SpfTrigger.POST_DELIVERY,
            post_delivery_delay=42.0,
            validates_dkim=False,
            validates_dmarc=False,
        )
        mta = _mta(world, behavior)
        replies, t_done = _converse(world)
        assert replies["message"].code == 250
        spf_records = [r for r in mta.validations if r.kind == "spf"]
        assert len(spf_records) == 1
        assert spf_records[0].t_started >= mta.deliveries[0].t_accepted + 42.0

    def test_post_delivery_validator_never_fires_without_message(self, world):
        behavior = MtaBehavior(
            accepts_any_recipient=True,
            spf_trigger=SpfTrigger.POST_DELIVERY,
            validates_dkim=False,
            validates_dmarc=False,
        )
        mta = _mta(world, behavior)
        _converse(world, message=False)  # probe-style: disconnect pre-DATA
        assert not [r for r in mta.validations if r.kind == "spf"]
        assert not world.server.queries_under("sender.example")


class TestPostmasterWhitelist:
    def _behavior(self, **kwargs):
        return MtaBehavior(
            accepts_any_recipient=False,
            accepts_postmaster=True,
            whitelists_postmaster=True,
            validates_dkim=False,
            validates_dmarc=False,
            **kwargs,
        )

    def test_postmaster_only_envelope_skips_validation(self, world):
        mta = _mta(world, self._behavior())
        replies, _ = _converse(world, rcpt="postmaster@rcpt.example", message=False)
        assert replies["rcpt"].code == 250
        assert not [r for r in mta.validations if r.kind == "spf"]

    def test_real_user_still_validated(self, world):
        behavior = self._behavior()
        behavior.valid_users = frozenset({"alice"})
        mta = _mta(world, behavior)
        replies, _ = _converse(world, rcpt="alice@rcpt.example", message=False)
        assert replies["rcpt"].code == 250
        assert [r for r in mta.validations if r.kind == "spf"]


class TestRecipientPolicy:
    def test_unknown_user_rejected(self, world):
        mta = _mta(world, MtaBehavior(validates_dkim=False, validates_dmarc=False))
        replies, _ = _converse(world, rcpt="nobody@rcpt.example", message=False)
        assert replies["rcpt"].code == 550
        assert "unknown" in replies["rcpt"].text.lower()

    def test_postmaster_accepted_by_default(self, world):
        _mta(world, MtaBehavior(validates_dkim=False, validates_dmarc=False))
        replies, _ = _converse(world, rcpt="PostMaster@rcpt.example", message=False)
        assert replies["rcpt"].code == 250

    def test_rejects_everything(self, world):
        behavior = MtaBehavior(
            accepts_any_recipient=False,
            accepts_postmaster=False,
            validates_dkim=False,
            validates_dmarc=False,
        )
        _mta(world, behavior)
        replies, _ = _converse(world, rcpt="postmaster@rcpt.example", message=False)
        assert replies["rcpt"].code == 550


class TestBlacklistRejection:
    @pytest.mark.parametrize("word", ["spam", "blacklist"])
    def test_rejection_text_carries_the_keyword(self, world, word):
        mta = _mta(
            world,
            MtaBehavior(accepts_any_recipient=True, blacklist_rejection=word),
        )
        replies, _ = _converse(world, message=False)
        assert replies["mail"].code == 554
        assert word in replies["mail"].text.lower()
        # Rejection precedes validation: no DNS queries at all.
        assert not world.server.queries_under("sender.example")


class TestHeloChecking:
    def test_helo_policy_checked_then_ignored(self, world):
        zone = world.server.zones[0]
        zone.add("client.sender.example", TxtRecord("v=spf1 -all"))
        behavior = MtaBehavior(
            accepts_any_recipient=True,
            checks_helo=True,
            validates_dkim=False,
            validates_dmarc=False,
        )
        mta = _mta(world, behavior)
        replies, _ = _converse(world, message=False)
        kinds = _validation_kinds(mta)
        assert kinds == ["helo-spf", "spf"]
        helo_record = mta.validations[0]
        assert helo_record.result == "fail"  # -all for the HELO identity
        assert replies["mail"].code == 250  # ...and it proceeded anyway


class TestMessagePipeline:
    def _signed_message(self, sender, rcpt):
        message = EmailMessage(
            [("From", sender), ("To", rcpt), ("Subject", "hi"), ("Date", "d"), ("Message-ID", "<1@s>")],
            "content\r\n",
        )
        DkimSigner("sender.example", "sel", KEYPAIR.private).sign(message)
        return message

    def _deliver(self, world, message, sender="user@sender.example"):
        client, t = SmtpClient.connect(world.network, CLIENT_IP, MTA_IP, 0.0)
        _, t = client.ehlo("client.sender.example", t)
        _, t = client.mail(sender, t)
        _, t = client.rcpt("bob@rcpt.example", t)
        _, t = client.data_command(t)
        reply, t = client.send_message(message, t)
        client.abort(t)
        return reply

    def test_full_pass_pipeline(self, world):
        mta = _mta(world)
        reply = self._deliver(world, self._signed_message("user@sender.example", "bob@rcpt.example"))
        assert reply.code == 250
        kinds = _validation_kinds(mta)
        assert kinds == ["spf", "dkim", "dmarc"]
        assert [r.result for r in mta.validations] == ["pass", "pass", "pass"]
        assert len(mta.deliveries) == 1

    def test_spoof_rejected_by_dmarc(self, world):
        spoofer_ip = "203.0.113.66"
        world.network.add_address(spoofer_ip)
        mta = _mta(world)
        message = EmailMessage(
            [("From", "user@sender.example"), ("To", "bob@rcpt.example")], "click me\r\n"
        )
        client, t = SmtpClient.connect(world.network, spoofer_ip, MTA_IP, 0.0)
        _, t = client.ehlo("evil.example", t)
        _, t = client.mail("user@sender.example", t)
        _, t = client.rcpt("bob@rcpt.example", t)
        _, t = client.data_command(t)
        reply, t = client.send_message(message, t)
        assert reply.code == 550
        assert "dmarc" in reply.text.lower()
        assert not mta.deliveries

    def test_non_enforcing_mta_delivers_spoof(self, world):
        spoofer_ip = "203.0.113.66"
        world.network.add_address(spoofer_ip)
        behavior = MtaBehavior(accepts_any_recipient=True, enforces_dmarc=False)
        mta = _mta(world, behavior)
        message = EmailMessage(
            [("From", "user@sender.example"), ("To", "bob@rcpt.example")], "click me\r\n"
        )
        client, t = SmtpClient.connect(world.network, spoofer_ip, MTA_IP, 0.0)
        _, t = client.ehlo("evil.example", t)
        _, t = client.mail("user@sender.example", t)
        _, t = client.rcpt("bob@rcpt.example", t)
        _, t = client.data_command(t)
        reply, t = client.send_message(message, t)
        assert reply.code == 250
        assert len(mta.deliveries) == 1

    def test_acceptance_delay_visible_to_sender(self, world):
        behavior = MtaBehavior(accepts_any_recipient=True, acceptance_delay=30.0)
        _mta(world, behavior)
        message = self._signed_message("user@sender.example", "bob@rcpt.example")
        client, t = SmtpClient.connect(world.network, CLIENT_IP, MTA_IP, 0.0)
        _, t = client.ehlo("c.sender.example", t)
        _, t = client.mail("user@sender.example", t)
        _, t = client.rcpt("bob@rcpt.example", t)
        _, t = client.data_command(t)
        t_before = t
        reply, t_after = client.send_message(message, t)
        assert reply.code == 250
        assert t_after - t_before >= 30.0


class TestResolverIpv6Derivation:
    def test_v4_only_mta_gets_derived_v6_resolver_address(self, world):
        mta = _mta(world, MtaBehavior(accepts_any_recipient=True, resolver_ipv6_capable=True))
        assert mta.resolver.address6 is not None
        assert mta.resolver.address6.startswith("2001:db8:5e:")

    def test_incapable_resolver_has_no_v6(self, world):
        world.network.unlisten_tcp(MTA_IP, 25)  # rebind below
        mta = ReceivingMta(
            "mx2.rcpt.example",
            world.network,
            world.directory,
            behavior=MtaBehavior(resolver_ipv6_capable=False),
            ipv4="198.51.100.31",
        )
        assert mta.resolver.address6 is None
