"""Tests for the sending MTA: MX selection, failover, implicit MX, signing."""

import pytest

from repro.dkim import DkimSigner, generate_keypair
from repro.dns.rdata import AAAARecord, ARecord, MxRecord
from repro.mta.sender import SendingMta
from repro.smtp.message import EmailMessage
from repro.smtp.protocol import Reply
from repro.smtp.server import SmtpServer, SmtpSession
from tests.helpers import World

SRC4 = "203.0.113.50"
SRC6 = "2001:db8:5::50"
KEYPAIR = generate_keypair(1024, seed=88)


class _Collector(SmtpSession):
    """Accepts everything; remembers messages on the class."""

    inbox = None  # type: list

    def on_message(self, message, t):
        type(self).inbox.append((message, self.mail_from, t))
        return Reply(250, "queued"), 0.0


class _Refuser(SmtpSession):
    def on_mail(self, mailbox, t):
        return Reply(451, "try again later"), 0.0


@pytest.fixture
def world():
    world = World(seed=71)
    zone = world.zone("rcpt.example")
    zone.add("rcpt.example", MxRecord(20, "backup.rcpt.example"))
    zone.add("rcpt.example", MxRecord(10, "primary.rcpt.example"))
    zone.add("primary.rcpt.example", ARecord("198.51.100.40"))
    zone.add("backup.rcpt.example", ARecord("198.51.100.41"))
    zone.add("bare.rcpt.example", ARecord("198.51.100.42"))
    zone.add("dual.rcpt.example", MxRecord(10, "dualmx.rcpt.example"))
    zone.add("dualmx.rcpt.example", ARecord("198.51.100.43"))
    zone.add("dualmx.rcpt.example", AAAARecord("2001:db8:9::43"))
    return world


@pytest.fixture
def inbox():
    box = []
    _Collector.inbox = box
    return box


def _sender(world, **kwargs):
    return SendingMta(
        "out.sender.example", world.network, world.directory, ipv4=SRC4, **kwargs
    )


def _message():
    return EmailMessage(
        [("From", "a@sender.example"), ("To", "b@rcpt.example"), ("Subject", "s")],
        "hello\r\n",
    )


def _listen(world, ip, session_cls=_Collector):
    SmtpServer(lambda src, t: session_cls(src, t)).attach(world.network, ip)


class TestTargetSelection:
    def test_mx_preference_order(self, world):
        sender = _sender(world)
        targets, _ = sender.resolve_targets("rcpt.example", 0.0)
        hosts = [host for host, _ in targets]
        assert hosts == ["primary.rcpt.example", "backup.rcpt.example"]

    def test_implicit_mx_fallback(self, world):
        sender = _sender(world)
        targets, _ = sender.resolve_targets("bare.rcpt.example", 0.0)
        assert targets == [("bare.rcpt.example", "198.51.100.42")]

    def test_ipv6_ordering_preference(self, world):
        sender = SendingMta(
            "out.sender.example", world.network, world.directory,
            ipv4=SRC4, ipv6=SRC6, prefer_ipv6=True,
        )
        targets, _ = sender.resolve_targets("dual.rcpt.example", 0.0)
        addresses = [address for _, address in targets]
        assert addresses[0] == "2001:db8:9::43"

    def test_v4_first_by_default(self, world):
        sender = SendingMta(
            "out.sender.example", world.network, world.directory, ipv4=SRC4, ipv6=SRC6
        )
        targets, _ = sender.resolve_targets("dual.rcpt.example", 0.0)
        assert targets[0][1] == "198.51.100.43"


class TestDelivery:
    def test_successful_delivery(self, world, inbox):
        _listen(world, "198.51.100.40")
        sender = _sender(world)
        record, t = sender.send(_message(), "a@sender.example", "b@rcpt.example", 0.0, sign=False)
        assert record.success
        assert record.mta_ip == "198.51.100.40"
        assert record.mx_host == "primary.rcpt.example"
        assert record.t_delivered is not None and record.t_delivered <= t
        assert len(inbox) == 1
        assert inbox[0][1].address == "a@sender.example"

    def test_failover_to_backup_mx(self, world, inbox):
        # Primary host has no SMTP listener at all.
        _listen(world, "198.51.100.41")
        sender = _sender(world)
        record, _ = sender.send(_message(), "a@sender.example", "b@rcpt.example", 0.0, sign=False)
        assert record.success
        assert record.mta_ip == "198.51.100.41"
        assert record.attempts == ["198.51.100.40", "198.51.100.41"]

    def test_transient_failure_tries_next(self, world, inbox):
        _listen(world, "198.51.100.40", _Refuser)
        _listen(world, "198.51.100.41")
        sender = _sender(world)
        record, _ = sender.send(_message(), "a@sender.example", "b@rcpt.example", 0.0, sign=False)
        assert record.success
        assert record.mta_ip == "198.51.100.41"

    def test_no_targets_at_all(self, world):
        sender = _sender(world)
        record, _ = sender.send(_message(), "a@s.example", "b@missing.example", 0.0, sign=False)
        assert not record.success
        assert record.mta_ip is None

    def test_delivery_log_kept(self, world, inbox):
        _listen(world, "198.51.100.40")
        sender = _sender(world)
        sender.send(_message(), "a@sender.example", "b@rcpt.example", 0.0, sign=False)
        sender.send(_message(), "a@sender.example", "c@rcpt.example", 10.0, sign=False)
        assert len(sender.log) == 2


class TestSigning:
    def test_message_signed_on_the_way_out(self, world, inbox):
        _listen(world, "198.51.100.40")
        signer = DkimSigner("sender.example", "s1", KEYPAIR.private)
        sender = _sender(world, signer=signer)
        record, _ = sender.send(_message(), "a@sender.example", "b@rcpt.example", 0.0)
        assert record.success
        received = inbox[0][0]
        value = received.get_header("DKIM-Signature")
        assert value is not None
        assert "d=sender.example" in value

    def test_existing_signature_not_replaced(self, world, inbox):
        _listen(world, "198.51.100.40")
        signer = DkimSigner("sender.example", "s1", KEYPAIR.private)
        message = _message()
        signer.sign(message)
        sender = _sender(world, signer=signer)
        sender.send(message, "a@sender.example", "b@rcpt.example", 0.0)
        assert len(inbox[0][0].get_all("DKIM-Signature")) == 1
