"""Tests for the virtual network substrate (clock, latency, transport)."""

import pytest

from repro.net import (
    Clock,
    ConnectionRefused,
    LatencyModel,
    Network,
    PortInUse,
    UniformLatency,
    Unreachable,
)
from repro.net.network import is_ipv6


class TestClock:
    def test_starts_at_given_time(self):
        assert Clock(42.5).now == 42.5

    def test_advance_moves_forward(self):
        clock = Clock()
        assert clock.advance(1.5) == 1.5
        assert clock.now == 1.5

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            Clock().advance(-0.1)

    def test_advance_to_future(self):
        clock = Clock(10.0)
        clock.advance_to(20.0)
        assert clock.now == 20.0

    def test_advance_to_past_is_noop(self):
        clock = Clock(10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0

    def test_sleep_is_advance(self):
        clock = Clock()
        clock.sleep(15.0)
        assert clock.now == 15.0


class TestLatency:
    def test_constant_model_symmetric(self):
        model = LatencyModel(0.03)
        assert model.one_way_delay("1.2.3.4", "5.6.7.8") == 0.03
        assert model.rtt("1.2.3.4", "5.6.7.8") == pytest.approx(0.06)

    def test_loopback_is_free(self):
        assert LatencyModel(0.03).one_way_delay("1.2.3.4", "1.2.3.4") == 0.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(-1.0)

    def test_uniform_model_is_stable_per_path(self):
        model = UniformLatency(0.01, 0.05, seed=3)
        first = model.one_way_delay("a", "b")
        assert model.one_way_delay("a", "b") == first
        assert 0.01 <= first <= 0.05

    def test_uniform_model_symmetric(self):
        model = UniformLatency(seed=3)
        assert model.one_way_delay("a", "b") == model.one_way_delay("b", "a")

    def test_uniform_model_deterministic_across_instances(self):
        a = UniformLatency(seed=7)
        b = UniformLatency(seed=7)
        assert a.one_way_delay("x", "y") == b.one_way_delay("x", "y")

    def test_uniform_model_validates_range(self):
        with pytest.raises(ValueError):
            UniformLatency(0.05, 0.01)


class TestUdp:
    def _network(self):
        return Network(LatencyModel(0.01))

    def test_request_response_timing(self):
        network = self._network()
        network.listen_udp("9.9.9.9", 53, lambda p, s, tr, t: (b"pong:" + p, 0.5))
        reply, t = network.udp_request("1.1.1.1", "9.9.9.9", 53, b"ping", 0.0)
        assert reply == b"pong:ping"
        assert t == pytest.approx(0.01 + 0.5 + 0.01)

    def test_unknown_host_unreachable(self):
        with pytest.raises(Unreachable):
            self._network().udp_request("1.1.1.1", "8.8.8.8", 53, b"x", 0.0)

    def test_known_host_wrong_port_refused(self):
        network = self._network()
        network.listen_udp("9.9.9.9", 53, lambda p, s, tr, t: (p, 0.0))
        with pytest.raises(ConnectionRefused):
            network.udp_request("1.1.1.1", "9.9.9.9", 54, b"x", 0.0)

    def test_double_bind_rejected(self):
        network = self._network()
        network.listen_udp("9.9.9.9", 53, lambda p, s, tr, t: (p, 0.0))
        with pytest.raises(PortInUse):
            network.listen_udp("9.9.9.9", 53, lambda p, s, tr, t: (p, 0.0))

    def test_handler_sees_arrival_time_and_source(self):
        network = self._network()
        seen = {}

        def handler(payload, src, transport, t):
            seen.update(src=src, transport=transport, t=t)
            return b"", 0.0

        network.listen_udp("9.9.9.9", 53, handler)
        network.udp_request("1.1.1.1", "9.9.9.9", 53, b"x", 5.0)
        assert seen == {"src": "1.1.1.1", "transport": "udp", "t": pytest.approx(5.01)}


class _EchoSession:
    def __init__(self):
        self.closed_at = None

    def on_connect(self, t):
        return b"hello\r\n"

    def on_data(self, data, t):
        if data == b"silent":
            return None, 0.0
        return data.upper(), 0.25

    def on_close(self, t):
        self.closed_at = t


class TestTcp:
    def _network_and_session(self):
        network = Network(LatencyModel(0.01))
        sessions = []

        def factory(src_ip, t):
            session = _EchoSession()
            sessions.append(session)
            return session

        network.listen_tcp("9.9.9.9", 25, factory)
        return network, sessions

    def test_connect_delivers_greeting(self):
        network, _ = self._network_and_session()
        channel = network.connect_tcp("1.1.1.1", "9.9.9.9", 25, 0.0)
        assert channel.greeting == b"hello\r\n"
        assert channel.t_established == pytest.approx(0.02)

    def test_request_roundtrip(self):
        network, _ = self._network_and_session()
        channel = network.connect_tcp("1.1.1.1", "9.9.9.9", 25, 0.0)
        reply, t = channel.request(b"abc", channel.t_established)
        assert reply == b"ABC"
        assert t == pytest.approx(0.02 + 0.01 + 0.25 + 0.01)

    def test_silent_round_returns_none(self):
        network, _ = self._network_and_session()
        channel = network.connect_tcp("1.1.1.1", "9.9.9.9", 25, 0.0)
        reply, _ = channel.request(b"silent", channel.t_established)
        assert reply is None

    def test_close_notifies_session(self):
        network, sessions = self._network_and_session()
        channel = network.connect_tcp("1.1.1.1", "9.9.9.9", 25, 0.0)
        channel.close(1.0)
        assert sessions[0].closed_at == pytest.approx(1.01)
        assert not channel.is_open

    def test_request_after_close_fails(self):
        network, _ = self._network_and_session()
        channel = network.connect_tcp("1.1.1.1", "9.9.9.9", 25, 0.0)
        channel.close(1.0)
        with pytest.raises(ConnectionRefused):
            channel.request(b"x", 2.0)

    def test_connect_to_missing_host(self):
        network, _ = self._network_and_session()
        with pytest.raises(Unreachable):
            network.connect_tcp("1.1.1.1", "7.7.7.7", 25, 0.0)

    def test_connect_refused_on_unbound_port(self):
        network, _ = self._network_and_session()
        with pytest.raises(ConnectionRefused):
            network.connect_tcp("1.1.1.1", "9.9.9.9", 26, 0.0)


def test_is_ipv6():
    assert is_ipv6("2001:db8::1")
    assert not is_ipv6("192.0.2.1")
