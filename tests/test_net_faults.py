"""Tests for the deterministic fault-injection subsystem."""

import pytest

from repro.dns.rdata import Rcode, RdataType, TxtRecord
from repro.net import Clock, Network, UniformLatency
from repro.net.errors import ConnectionRefused, ConnectionResetByPeer, PacketLost
from repro.net.faults import (
    FaultKind,
    FaultPlan,
    FaultRule,
    derive_fault_seed,
)
from repro.net.retry import NO_RETRY, RetryPolicy
from repro.obs import Observability
from repro.obs.export import render_metrics_text
from repro.smtp.client import SmtpClient
from repro.smtp.errors import SmtpClientError
from repro.smtp.server import SmtpServer, SmtpSession
from tests.helpers import AUTH_IP, World


def plan_of(spec, seed=0):
    return FaultPlan.parse(spec, seed=seed)


class TestParsing:
    def test_spec_round_trip(self):
        plan = plan_of("udp_loss:0.2,servfail:0.1@example.com,banner_delay:0.3:45")
        assert [r.kind for r in plan.rules] == [
            FaultKind.UDP_LOSS,
            FaultKind.SERVFAIL,
            FaultKind.BANNER_DELAY,
        ]
        assert plan.rules[0].probability == 0.2
        assert plan.rules[1].where == "example.com"
        assert plan.rules[2].param == 45.0

    def test_delay_defaults(self):
        plan = plan_of("udp_delay:1.0,banner_delay:1.0")
        assert plan.rules[0].param == 7.5
        assert plan.rules[1].param == 30.0

    def test_json_form(self):
        plan = plan_of('[{"kind": "tcp_reset", "probability": 0.5, "where": "25"}]')
        assert plan.rules[0].kind is FaultKind.TCP_RESET
        assert plan.rules[0].where == "25"

    def test_empty_specs_are_empty_plans(self):
        assert plan_of("").empty
        assert plan_of("  ").empty
        assert plan_of(",").empty

    @pytest.mark.parametrize(
        "bad",
        [
            "nosuchkind:0.5",
            "udp_loss",
            "udp_loss:high",
            "udp_loss:1.5",
            "udp_loss:0.5:-1",
        ],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            plan_of(bad)

    def test_json_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            plan_of('[{"kind": "udp_loss", "probability": 0.5, "oops": 1}]')


class TestRuleMatching:
    def test_unscoped_matches_everything(self):
        rule = FaultRule(FaultKind.UDP_LOSS, 1.0)
        assert rule.matches("198.51.100.53", 53)

    def test_port_scope(self):
        rule = FaultRule(FaultKind.TCP_REFUSE, 1.0, where="25")
        assert rule.matches("anything", 25)
        assert not rule.matches("anything", 53)

    def test_suffix_scope(self):
        rule = FaultRule(FaultKind.SERVFAIL, 1.0, where="example.com")
        assert rule.matches("mail.example.com", None)
        assert rule.matches("example.com", None)
        assert not rule.matches("example.org", None)


class TestDeterminism:
    def test_same_seed_same_draws(self):
        a = plan_of("udp_loss:0.5", seed=99)
        b = plan_of("udp_loss:0.5", seed=99)
        events = [("1.2.3.4", "5.6.7.8", float(i)) for i in range(200)]
        draws_a = [a.fires(FaultKind.UDP_LOSS, s, d, t) is not None for s, d, t in events]
        draws_b = [b.fires(FaultKind.UDP_LOSS, s, d, t) is not None for s, d, t in events]
        assert draws_a == draws_b
        # Mid-probability means both outcomes occur over 200 events.
        assert any(draws_a) and not all(draws_a)

    def test_different_seed_different_draws(self):
        a = plan_of("udp_loss:0.5", seed=1)
        b = plan_of("udp_loss:0.5", seed=2)
        events = [("1.2.3.4", "5.6.7.8", float(i)) for i in range(200)]
        assert [a.fires(FaultKind.UDP_LOSS, s, d, t) for s, d, t in events] != [
            b.fires(FaultKind.UDP_LOSS, s, d, t) for s, d, t in events
        ]

    def test_probability_extremes(self):
        always = plan_of("udp_loss:1.0")
        never = plan_of("udp_loss:0.0")
        assert always.fires(FaultKind.UDP_LOSS, "a", "b", 1.0) is not None
        assert never.fires(FaultKind.UDP_LOSS, "a", "b", 1.0) is None

    def test_empty_plan_never_fires(self):
        plan = plan_of("")
        assert plan.fires(FaultKind.UDP_LOSS, "a", "b", 1.0) is None
        assert plan.injected == {}

    def test_derive_fault_seed_is_stable_and_spec_sensitive(self):
        assert derive_fault_seed("udp_loss:0.5", 2021) == derive_fault_seed(
            "udp_loss:0.5", 2021
        )
        assert derive_fault_seed("udp_loss:0.5", 2021) != derive_fault_seed(
            "udp_loss:0.5", 2022
        )
        assert derive_fault_seed("udp_loss:0.5", 2021) != derive_fault_seed(
            "servfail:0.5", 2021
        )


def make_network(spec, seed=0):
    plan = plan_of(spec, seed=seed)
    network = Network(UniformLatency(0.005, 0.02, seed=3), Clock(), faults=plan)
    return network, plan


class TestNetworkInjection:
    def test_udp_loss_drops_before_the_handler(self):
        network, plan = make_network("udp_loss:1.0")
        seen = []

        def handler(payload, src, transport, t):
            seen.append(payload)
            return b"reply", 0.0

        network.listen_udp("10.0.0.2", 53, handler)
        network.add_address("10.0.0.1")
        with pytest.raises(PacketLost):
            network.udp_request("10.0.0.1", "10.0.0.2", 53, b"hello", 0.0)
        assert seen == []  # the server never saw the datagram
        assert plan.injected == {"udp_loss": 1}

    def test_udp_delay_slows_the_reply(self):
        slow, _ = make_network("udp_delay:1.0:9.0")
        fast, _ = make_network("")

        def handler(payload, src, transport, t):
            return b"reply", 0.0

        for network in (slow, fast):
            network.listen_udp("10.0.0.2", 53, handler)
            network.add_address("10.0.0.1")
        _, t_slow = slow.udp_request("10.0.0.1", "10.0.0.2", 53, b"x", 0.0)
        _, t_fast = fast.udp_request("10.0.0.1", "10.0.0.2", 53, b"x", 0.0)
        assert t_slow == pytest.approx(t_fast + 9.0)

    def test_tcp_refuse_scoped_by_port(self):
        network, plan = make_network("tcp_refuse:1.0@25")
        network.listen_tcp("10.0.0.2", 25, lambda ip, t: _Session())
        network.listen_tcp("10.0.0.2", 53, lambda ip, t: _Session())
        network.add_address("10.0.0.1")
        with pytest.raises(ConnectionRefused) as info:
            network.connect_tcp("10.0.0.1", "10.0.0.2", 25, 5.0)
        assert info.value.t is not None and info.value.t > 5.0
        # The same plan leaves port 53 alone.
        channel = network.connect_tcp("10.0.0.1", "10.0.0.2", 53, 5.0)
        assert channel.greeting == b"hi"
        assert plan.injected == {"tcp_refuse": 1}

    def test_tcp_reset_mid_conversation_closes_the_session(self):
        network, plan = make_network("tcp_reset:1.0")
        session = _Session()
        network.listen_tcp("10.0.0.2", 25, lambda ip, t: session)
        network.add_address("10.0.0.1")
        channel = network.connect_tcp("10.0.0.1", "10.0.0.2", 25, 0.0)
        with pytest.raises(ConnectionResetByPeer) as info:
            channel.request(b"EHLO", channel.t_established)
        assert info.value.t is not None
        assert session.closed_at is not None  # server observed the teardown
        assert session.data == []  # the request never arrived
        assert plan.injected == {"tcp_reset": 1}


class _Session:
    def __init__(self):
        self.data = []
        self.closed_at = None

    def on_connect(self, t):
        return b"hi"

    def on_data(self, data, t):
        self.data.append(data)
        return b"ok", 0.0

    def on_close(self, t):
        self.closed_at = t


class TestDnsServerInjection:
    def _world(self, spec, seed=0):
        world = World(seed=5)
        world.server.faults = plan_of(spec, seed=seed)
        zone = world.zone("faulty.test")
        zone.add("faulty.test", TxtRecord("v=spf1 -all"))
        return world

    def test_servfail_rcode(self):
        world = self._world("servfail:1.0")
        answer, _ = world.resolver().query_at("faulty.test", RdataType.TXT, 0.0)
        assert answer.status.is_error
        assert answer.rcode is Rcode.SERVFAIL
        assert world.server.faults.injected == {"servfail": 1}

    def test_refused_rcode(self):
        world = self._world("refused:1.0")
        answer, _ = world.resolver().query_at("faulty.test", RdataType.TXT, 0.0)
        assert answer.status.is_error

    def test_faulted_queries_still_logged(self):
        # The rcode kinds inject *after* query logging: both measurement
        # witnesses (server log, client span) must agree the exchange
        # happened.
        world = self._world("servfail:1.0")
        world.resolver().query_at("faulty.test", RdataType.TXT, 0.0)
        assert len(world.server.query_log) == 1

    def test_truncate_with_tcp_fallback_recovers(self):
        world = self._world("truncate:1.0")
        answer, _ = world.resolver().query_at("faulty.test", RdataType.TXT, 0.0)
        assert answer.status.value == "success"
        assert answer.transport == "tcp"

    def test_truncate_without_working_tcp_fails(self):
        # The paper's Section 7.3 failure mode: TC=1 over UDP and a
        # broken TCP path (here: every port-53 connect is refused).
        world = self._world("truncate:1.0,tcp_refuse:1.0@53")
        world.network.faults = world.server.faults
        answer, _ = world.resolver().query_at("faulty.test", RdataType.TXT, 0.0)
        assert answer.status.is_error

    def test_where_scopes_to_qname_suffix(self):
        world = self._world("servfail:1.0@other.test")
        answer, _ = world.resolver().query_at("faulty.test", RdataType.TXT, 0.0)
        assert answer.status.value == "success"


SMTP_SERVER_IP = "198.51.100.25"
SMTP_CLIENT_IP = "203.0.113.25"


class TestSmtpBannerInjection:
    def _network(self, spec, seed=0):
        plan = plan_of(spec, seed=seed)
        network = Network(UniformLatency(0.005, 0.02, seed=9), Clock(), faults=plan)

        class Faulted(SmtpSession):
            banner_host = "mx.faulty.test"
            faults = plan

        SmtpServer(Faulted).attach(network, SMTP_SERVER_IP)
        network.add_address(SMTP_CLIENT_IP)
        return network, plan

    def test_banner_absent_fails_connect(self):
        network, plan = self._network("banner_absent:1.0")
        with pytest.raises(SmtpClientError) as info:
            SmtpClient.connect(network, SMTP_CLIENT_IP, SMTP_SERVER_IP, 0.0)
        assert "banner" in str(info.value)
        assert plan.injected == {"banner_absent": 1}

    def test_banner_delay_beyond_timeout_fails_at_deadline(self):
        network, _ = self._network("banner_delay:1.0:60")
        with pytest.raises(SmtpClientError) as info:
            SmtpClient.connect(
                network, SMTP_CLIENT_IP, SMTP_SERVER_IP, 0.0, banner_timeout=30.0
            )
        assert info.value.t == pytest.approx(30.0)

    def test_banner_delay_within_patience_just_costs_time(self):
        network, _ = self._network("banner_delay:1.0:60")
        client, t = SmtpClient.connect(network, SMTP_CLIENT_IP, SMTP_SERVER_IP, 0.0)
        assert client.greeting.code == 220
        assert t > 60.0

    def test_connect_retry_eventually_gives_up(self):
        network, plan = self._network("banner_absent:1.0")
        retry = RetryPolicy(attempts=3, backoff=4.0)
        with pytest.raises(SmtpClientError):
            SmtpClient.connect(
                network, SMTP_CLIENT_IP, SMTP_SERVER_IP, 0.0, retry=retry
            )
        assert plan.injected == {"banner_absent": 3}


class TestConnectStamps:
    def test_refused_connect_error_carries_rst_arrival_time(self):
        # The satellite fix: every connect outcome is stamped with the
        # virtual time the outcome was *known* — for a refusal that is
        # the RST's arrival, one RTT after the dial, not the dial time.
        network = Network(UniformLatency(0.005, 0.02, seed=4), Clock())
        network.add_address(SMTP_CLIENT_IP)
        network.add_address(SMTP_SERVER_IP)  # host exists, nothing listens
        with pytest.raises(SmtpClientError) as info:
            SmtpClient.connect(network, SMTP_CLIENT_IP, SMTP_SERVER_IP, 10.0)
        assert info.value.t is not None
        assert info.value.t > 10.0

    def test_nobanner_error_stamped_at_deadline(self):
        plan = plan_of("banner_absent:1.0")
        network = Network(UniformLatency(0.005, 0.02, seed=4), Clock(), faults=plan)

        class Faulted(SmtpSession):
            banner_host = "mx.faulty.test"
            faults = plan

        SmtpServer(Faulted).attach(network, SMTP_SERVER_IP)
        network.add_address(SMTP_CLIENT_IP)
        with pytest.raises(SmtpClientError) as info:
            SmtpClient.connect(
                network, SMTP_CLIENT_IP, SMTP_SERVER_IP, 0.0, banner_timeout=12.0
            )
        assert info.value.t == pytest.approx(12.0)


class TestObservability:
    def test_injections_counted_per_kind(self):
        plan = plan_of("udp_loss:1.0")
        obs = Observability()
        plan.attach_obs(obs)
        plan.inject(FaultKind.UDP_LOSS, "a", "b", 1.0)
        plan.inject(FaultKind.UDP_LOSS, "a", "b", 2.0)
        text = render_metrics_text(obs.metrics)
        assert "faults_injected_total{kind=udp_loss}" in text
        assert plan.injected == {"udp_loss": 2}


class TestRetryPolicy:
    def test_backoff_schedule(self):
        policy = RetryPolicy(attempts=4, backoff=1.5, multiplier=2.0)
        assert policy.delay_before(1) == 0.0
        assert policy.delay_before(2) == 1.5
        assert policy.delay_before(3) == 3.0
        assert policy.delay_before(4) == 6.0

    def test_no_retry_defaults(self):
        assert NO_RETRY.attempts == 1
        assert NO_RETRY.delay_before(1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-1.0)
