"""Integration tests for the observability layer on real campaigns.

Two layers of assertion: a live testbed whose spans must reconcile with
the server-side query log, and the CLI runner whose observability
artefacts must exist, load, and stay documented in OBSERVABILITY.md.
"""

import pathlib
import re

import pytest

from repro.core.campaign import ProbeCampaign, Testbed
from repro.core.datasets import DatasetSpec, generate_universe
from repro.core.runner import main
from repro.obs import NULL_OBS
from repro.obs.reconcile import entries_from_spans, reconcile_spans
from repro.obs.spans import load_spans

REPO = pathlib.Path(__file__).parent.parent


@pytest.fixture(scope="module")
def probed_testbed():
    universe = generate_universe(DatasetSpec.two_week_mx(scale=0.003), seed=7)
    testbed = Testbed(universe, seed=8)  # obs on by default
    result = ProbeCampaign(testbed, "TwoWeekMX").run()
    return testbed, result


class TestLiveCampaign:
    def test_spans_reconcile_with_query_log(self, probed_testbed):
        testbed, _ = probed_testbed
        verdict = reconcile_spans(
            testbed.obs.tracer.finished, testbed.query_index(), testbed.synth_config
        )
        assert verdict.matched, verdict.render_text()
        assert sum(verdict.span_counts.values()) > 0

    def test_exchange_spans_count_server_queries(self, probed_testbed):
        """Every exchange the client sent is one query the server saw."""
        testbed, _ = probed_testbed
        entries, _unsent = entries_from_spans(testbed.obs.tracer.finished)
        assert len(entries) == len(testbed.synth.query_log) + len(
            testbed.universe_dns.query_log
        )

    def test_metrics_agree_with_spans(self, probed_testbed):
        testbed, result = probed_testbed
        metrics, tracer = testbed.obs.metrics, testbed.obs.tracer
        assert metrics.counter_total("spf_checks_total") == len(tracer.find("spf.check_host"))
        assert metrics.counter_total("probe_conversations_total") == len(result.results)
        assert metrics.counter_total("smtp_server_sessions_total") == len(
            tracer.find("probe.conversation")
        )

    def test_null_obs_records_nothing(self):
        universe = generate_universe(DatasetSpec.two_week_mx(scale=0.003), seed=7)
        testbed = Testbed(universe, seed=8, obs=NULL_OBS)
        ProbeCampaign(testbed, "TwoWeekMX", testids=["t01"]).run()
        assert len(testbed.obs.metrics) == 0
        assert len(testbed.obs.tracer) == 0


@pytest.fixture(scope="module")
def runner_out(tmp_path_factory):
    out = tmp_path_factory.mktemp("runner_obs")
    # --workers 1: span dumps are a serial-run artefact (parallel runs
    # keep span objects inside their worker processes).
    code = main(
        ["--experiment", "all", "--scale", "0.003", "--seed", "11", "--out", str(out),
         "--quiet", "--workers", "1"]
    )
    assert code == 0
    return out


class TestRunnerArtefacts:
    def test_artefact_pair_written_per_experiment(self, runner_out):
        for name in ("notifyemail", "notifymx", "twoweekmx"):
            assert (runner_out / ("%s_metrics.txt" % name)).exists()
            spans = load_spans(runner_out / ("%s_spans.jsonl" % name))
            assert spans
            assert any(span.name == "campaign.run" for span in spans)

    def test_notifymx_artefacts_are_cumulative(self, runner_out):
        """NotifyEmail and NotifyMX share one testbed, so the NotifyMX
        span dump contains both campaigns' roots."""
        campaigns = {
            span.attrs.get("campaign")
            for span in load_spans(runner_out / "notifymx_spans.jsonl")
            if span.name == "campaign.run"
        }
        assert campaigns == {"notifyemail", "NotifyMX"}

    def test_quiet_run_prints_nothing(self, runner_out, capsys):
        # The fixture already ran with --quiet inside this capsys scope's
        # session; a fresh tiny run proves the sink contract directly.
        main(["--experiment", "twoweekmx", "--scale", "0.002", "--seed", "3",
              "--out", str(runner_out / "quiet"), "--quiet"])
        assert capsys.readouterr().out == ""

    def test_no_obs_skips_artefacts(self, tmp_path):
        main(["--experiment", "twoweekmx", "--scale", "0.002", "--seed", "3",
              "--out", str(tmp_path), "--no-obs", "--quiet"])
        assert (tmp_path / "twoweekmx_report.txt").exists()
        assert not (tmp_path / "twoweekmx_metrics.txt").exists()
        assert not (tmp_path / "twoweekmx_spans.jsonl").exists()


class TestDocumentationCoverage:
    def test_every_exported_name_is_documented(self, runner_out):
        """OBSERVABILITY.md must name every metric and span a real run
        emits — the catalogue is a contract, not an illustration."""
        documented = (REPO / "OBSERVABILITY.md").read_text(encoding="utf-8")
        metric_names = set()
        for path in runner_out.glob("*_metrics.txt"):
            for line in path.read_text(encoding="utf-8").splitlines():
                match = re.match(r"^  ([a-z][a-z0-9_]+)[{ ]", line)
                if match:
                    metric_names.add(match.group(1))
        span_names = {
            span.name
            for path in runner_out.glob("*_spans.jsonl")
            for span in load_spans(path)
        }
        assert metric_names, "runner emitted no metrics to check against"
        missing = {name for name in metric_names | span_names if name not in documented}
        assert not missing, "undocumented in OBSERVABILITY.md: %s" % sorted(missing)
