"""Tests for the metrics registry and its exporters."""

import pytest

from repro.obs.export import render_metrics_text, render_prometheus
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    normalize_labels,
)


class TestLabels:
    def test_mapping_is_sorted(self):
        assert normalize_labels({"b": 2, "a": 1}) == (("a", 1), ("b", 2))

    def test_pair_sequence_is_trusted_verbatim(self):
        pairs = (("b", 2), ("a", 1))
        assert normalize_labels(pairs) == pairs

    def test_equivalent_mappings_hit_one_series(self):
        registry = MetricsRegistry()
        registry.counter("x_total", {"a": 1, "b": 2})
        registry.counter("x_total", {"b": 2, "a": 1})
        assert registry.counter_value("x_total", {"a": 1, "b": 2}) == 2.0


class TestCounters:
    def test_default_increment_is_one(self):
        registry = MetricsRegistry()
        registry.counter("hits_total")
        registry.counter("hits_total")
        assert registry.counter_value("hits_total") == 2.0

    def test_labelled_series_are_independent(self):
        registry = MetricsRegistry()
        registry.counter("q_total", (("rdtype", "TXT"),), value=3)
        registry.counter("q_total", (("rdtype", "A"),))
        assert registry.counter_value("q_total", (("rdtype", "TXT"),)) == 3.0
        assert registry.counter_value("q_total", (("rdtype", "A"),)) == 1.0
        assert registry.counter_total("q_total") == 4.0

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("hits_total", value=-1)

    def test_unknown_counter_reads_zero(self):
        assert MetricsRegistry().counter_value("nope_total") == 0.0


class TestGauges:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("domains", 10)
        registry.gauge("domains", 7)
        assert registry.gauge_value("domains") == 7

    def test_unknown_gauge_is_none(self):
        assert MetricsRegistry().gauge_value("nope") is None


class TestHistograms:
    def test_observations_land_in_buckets(self):
        histogram = Histogram((1.0, 2.0))
        for value in (0.5, 1.5, 99.0):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1]
        assert histogram.count == 3
        assert histogram.total == pytest.approx(101.0)
        assert histogram.mean == pytest.approx(101.0 / 3)

    def test_quantile_interpolates_within_bucket(self):
        histogram = Histogram((10.0,))
        for _ in range(4):
            histogram.observe(5.0)
        # All mass in [0, 10]; p50 interpolates to the bucket midpoint.
        assert histogram.quantile(0.5) == pytest.approx(5.0)
        assert histogram.quantile(1.0) == pytest.approx(10.0)

    def test_quantile_of_empty_is_zero(self):
        assert Histogram((1.0,)).quantile(0.5) == 0.0

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram((1.0,)).quantile(1.5)

    def test_registry_uses_default_time_buckets(self):
        registry = MetricsRegistry()
        registry.observe("latency_seconds", 0.02)
        assert registry.histogram("latency_seconds").buckets == DEFAULT_TIME_BUCKETS

    def test_declared_buckets_are_used(self):
        registry = MetricsRegistry()
        registry.declare_histogram("lookups_per_check", (0.0, 5.0, 10.0))
        registry.observe("lookups_per_check", 3)
        assert registry.histogram("lookups_per_check").buckets == (0.0, 5.0, 10.0)

    def test_redeclaring_same_buckets_is_noop(self):
        registry = MetricsRegistry()
        registry.declare_histogram("h", (1.0, 2.0))
        registry.declare_histogram("h", (1.0, 2.0))

    def test_redeclaring_different_buckets_is_error(self):
        registry = MetricsRegistry()
        registry.declare_histogram("h", (1.0, 2.0))
        with pytest.raises(ValueError):
            registry.declare_histogram("h", (1.0, 3.0))

    def test_non_increasing_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().declare_histogram("h", (2.0, 1.0))


class TestRegistryReaders:
    def test_virtual_time_is_a_high_water_mark(self):
        registry = MetricsRegistry()
        registry.counter("a_total", t=5.0)
        registry.gauge("b", 1, t=3.0)
        assert registry.virtual_time == 5.0

    def test_names_kinds_and_len(self):
        registry = MetricsRegistry()
        registry.counter("c_total")
        registry.gauge("g", 1)
        registry.observe("h_seconds", 0.1)
        assert registry.names() == ["c_total", "g", "h_seconds"]
        assert registry.kind_of("c_total") == "counter"
        assert registry.kind_of("g") == "gauge"
        assert registry.kind_of("h_seconds") == "histogram"
        assert registry.kind_of("missing") is None
        assert len(registry) == 3

    def test_series_sorted_by_labels(self):
        registry = MetricsRegistry()
        registry.counter("c_total", (("k", "b"),))
        registry.counter("c_total", (("k", "a"),))
        labels = [key for key, _ in registry.series("c_total")]
        assert labels == [(("k", "a"),), (("k", "b"),)]


class TestNullRegistry:
    def test_records_nothing(self):
        registry = NullMetricsRegistry()
        registry.counter("c_total", t=9.0)
        registry.gauge("g", 1)
        registry.observe("h", 0.5)
        registry.declare_histogram("h", (1.0,))
        assert len(registry) == 0
        assert registry.virtual_time == 0.0
        assert not registry.enabled


class TestExporters:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("q_total", (("rdtype", "TXT"),), value=2, t=4.0)
        registry.gauge("domains", 12)
        registry.observe("t_seconds", 0.02)
        return registry

    def test_text_table_sections(self):
        text = render_metrics_text(self._registry(), header="demo metrics")
        assert "demo metrics (virtual time 4.000 s, 3 series)" in text
        assert "counters" in text and "gauges" in text and "histograms" in text
        assert "q_total{rdtype=TXT}" in text
        assert "count=1" in text and "p50=" in text

    def test_prometheus_exposition(self):
        text = render_prometheus(self._registry())
        assert '# TYPE q_total counter' in text
        assert 'q_total{rdtype="TXT"} 2' in text
        assert "# TYPE t_seconds histogram" in text
        assert 't_seconds_bucket{le="+Inf"} 1' in text
        assert "t_seconds_count 1" in text
        # Buckets are cumulative: every bound at/above 0.025 carries the
        # single observation.
        assert 't_seconds_bucket{le="0.025"} 1' in text
        assert 't_seconds_bucket{le="0.01"} 0' in text
