"""Tests for virtual-time span tracing and the JSONL span dumps."""

import pytest

from repro.obs.spans import (
    NullTracer,
    SpanError,
    Tracer,
    load_spans,
    render_span,
    render_tree,
    save_spans,
)


class TestSpanLifecycle:
    def test_nesting_is_causality(self):
        tracer = Tracer()
        with tracer.span("outer", 0.0) as outer:
            with tracer.span("inner", 1.0) as inner:
                inner.end(2.0)
            outer.end(3.0)
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # Finished in completion order: innermost first.
        assert [span.name for span in tracer.finished] == ["inner", "outer"]

    def test_siblings_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("parent", 0.0):
            with tracer.span("a", 0.0):
                pass
            with tracer.span("b", 1.0):
                pass
        a, b, _ = tracer.finished
        assert a.parent_id == b.parent_id

    def test_end_before_start_rejected(self):
        tracer = Tracer()
        span = tracer.span("x", 5.0)
        with pytest.raises(ValueError):
            span.end(4.0)

    def test_unended_span_closes_at_start(self):
        tracer = Tracer()
        with tracer.span("x", 7.0):
            pass
        assert tracer.finished[0].t_end == 7.0
        assert tracer.finished[0].duration == 0.0

    def test_exception_recorded_as_error_attr(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("x", 0.0):
                raise RuntimeError("boom")
        assert tracer.finished[0].attrs["error"] == "RuntimeError: boom"

    def test_set_updates_attrs(self):
        tracer = Tracer()
        with tracer.span("x", 0.0, a=1) as span:
            span.set(b=2, a=3)
        assert tracer.finished[0].attrs == {"a": 3, "b": 2}


class TestTracerQueries:
    def _tracer(self):
        tracer = Tracer()
        with tracer.span("conv", 0.0) as conv:
            with tracer.span("cmd", 1.0):
                pass
            with tracer.span("cmd", 2.0):
                pass
            conv.end(3.0)
        return tracer

    def test_find_filters_by_name(self):
        tracer = self._tracer()
        assert len(tracer.find("cmd")) == 2
        assert len(tracer.find()) == 3
        assert tracer.find("missing") == []

    def test_roots_and_children_index(self):
        tracer = self._tracer()
        (root,) = tracer.roots()
        assert root.name == "conv"
        children = tracer.children_index()[root.span_id]
        assert [child.t_start for child in children] == [1.0, 2.0]

    def test_clear_and_len(self):
        tracer = self._tracer()
        assert len(tracer) == 3
        tracer.clear()
        assert len(tracer) == 0


class TestNullTracer:
    def test_shared_noop_span(self):
        tracer = NullTracer()
        with tracer.span("a", 0.0) as a:
            a.set(ignored=True).end(9.0)
        b = tracer.span("b", 1.0)
        assert a is b
        assert len(tracer) == 0
        assert not tracer.enabled


class TestRendering:
    def test_render_span_line(self):
        tracer = Tracer()
        with tracer.span("dns.query", 1.0, qname="example.com.") as span:
            span.end(1.5)
        line = render_span(tracer.finished[0])
        assert line.startswith("dns.query [1.000 .. 1.500] (0.500s)")
        assert "qname=example.com." in line

    def test_render_tree_glyphs(self):
        tracer = Tracer()
        with tracer.span("root", 0.0):
            with tracer.span("first", 0.0):
                pass
            with tracer.span("last", 1.0):
                with tracer.span("leaf", 1.0):
                    pass
        (root,) = tracer.roots()
        tree = render_tree(root, tracer.finished)
        lines = tree.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("|- first")
        assert lines[2].startswith("`- last")
        assert lines[3].startswith("   `- leaf")


class TestDumpRoundTrip:
    def test_save_and_load(self, tmp_path):
        tracer = Tracer()
        with tracer.span("conv", 0.0, mtaid="m1") as conv:
            with tracer.span("cmd", 1.0) as cmd:
                cmd.set(code=250).end(2.0)
            conv.end(3.0)
        path = tmp_path / "spans.jsonl"
        assert save_spans(tracer.finished, path) == 2
        loaded = load_spans(path)
        assert [span.name for span in loaded] == ["cmd", "conv"]
        by_name = {span.name: span for span in loaded}
        assert by_name["cmd"].parent_id == by_name["conv"].span_id
        assert by_name["cmd"].attrs == {"code": 250}
        assert by_name["conv"].t_end == 3.0

    def test_non_json_attrs_stringified(self, tmp_path):
        tracer = Tracer()
        with tracer.span("x", 0.0, where=("a", "b")):
            pass
        path = tmp_path / "spans.jsonl"
        save_spans(tracer.finished, path)
        assert load_spans(path)[0].attrs["where"] == "('a', 'b')"

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n", encoding="utf-8")
        with pytest.raises(SpanError):
            load_spans(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "repro-queries", "version": 1}\n', encoding="utf-8")
        with pytest.raises(SpanError):
            load_spans(path)

    def test_bad_record_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"format": "repro-spans", "version": 1}\n{"name": "x"}\n', encoding="utf-8"
        )
        with pytest.raises(SpanError):
            load_spans(path)
