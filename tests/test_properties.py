"""Cross-module property-based tests (hypothesis).

These generate random-but-valid protocol artefacts and assert structural
invariants: parse/serialise fixpoints, evaluator totality, cache
correctness under arbitrary access patterns.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dmarc.record import DmarcRecord
from repro.dns.cache import TtlCache
from repro.dns.name import Name
from repro.dns.rdata import RdataType
from repro.spf.errors import SpfSyntaxError
from repro.spf.macros import MacroContext, expand_macros
from repro.spf.parser import parse_record
from repro.spf.result import SpfResult

# -- strategies -----------------------------------------------------------

_label = st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=10)
_domain = st.lists(_label, min_size=2, max_size=4).map(".".join)

_octet = st.integers(0, 255)
_ipv4 = st.tuples(_octet, _octet, _octet, _octet).map(lambda t: "%d.%d.%d.%d" % t)

_qualifier = st.sampled_from(["", "+", "-", "~", "?"])

_mechanism = st.one_of(
    st.just("all"),
    st.builds(lambda ip: "ip4:%s" % ip, _ipv4),
    st.builds(lambda ip, p: "ip4:%s/%d" % (ip, p), _ipv4, st.integers(0, 32)),
    st.builds(lambda n: "ip6:2001:db8::%x/%d" % (n, 48), st.integers(0, 0xFFFF)),
    st.just("a"),
    st.builds(lambda d: "a:%s" % d, _domain),
    st.builds(lambda d, c: "a:%s/%d" % (d, c), _domain, st.integers(0, 32)),
    st.just("mx"),
    st.builds(lambda d: "mx:%s" % d, _domain),
    st.builds(lambda d: "include:%s" % d, _domain),
    st.builds(lambda d: "exists:%s" % d, _domain),
    st.just("ptr"),
    st.builds(lambda d: "ptr:%s" % d, _domain),
)

_term = st.one_of(
    st.tuples(_qualifier, _mechanism).map(lambda pair: pair[0] + pair[1]),
    st.builds(lambda d: "redirect=%s" % d, _domain),
    st.builds(lambda d: "exp=%s" % d, _domain),
)

def _singleton_modifiers_only(terms):
    """RFC 7208 section 6: redirect=/exp= at most once per record."""
    for prefix in ("redirect=", "exp="):
        if sum(term.startswith(prefix) for term in terms) > 1:
            return False
    return True


_spf_record = (
    st.lists(_term, min_size=0, max_size=8)
    .filter(_singleton_modifiers_only)
    .map(lambda terms: ("v=spf1 " + " ".join(terms)).strip())
)


# -- SPF parser ------------------------------------------------------------


@given(_spf_record)
def test_spf_parse_serialise_fixpoint(text):
    """parse -> to_text -> parse is a fixpoint for valid records."""
    record = parse_record(text)
    rendered = record.to_text()
    again = parse_record(rendered)
    assert again.terms == record.terms
    assert again.to_text() == rendered


@given(_spf_record)
def test_tolerant_parse_agrees_on_valid_input(text):
    assert parse_record(text, tolerant=True).terms == parse_record(text).terms


@given(st.text(max_size=60))
def test_spf_parser_total_on_garbage(text):
    """Arbitrary text either parses or raises SpfSyntaxError — nothing else."""
    try:
        parse_record("v=spf1 " + text)
    except SpfSyntaxError:
        pass


# -- SPF evaluation totality -----------------------------------------------


@settings(max_examples=60, deadline=None)
@given(_spf_record, _ipv4)
def test_evaluator_total_without_dns(record_text, client_ip):
    """Against an empty DNS world the evaluator must terminate with a
    legal result for any valid policy and any client address."""
    from repro.dns.resolver import AuthorityDirectory, Resolver
    from repro.dns.rdata import SoaRecord, TxtRecord
    from repro.dns.server import AuthoritativeServer
    from repro.dns.zone import Zone
    from repro.net.clock import Clock
    from repro.net.latency import LatencyModel
    from repro.net.network import Network
    from repro.spf.evaluator import SpfEvaluator

    network = Network(LatencyModel(0.001), Clock())
    zone = Zone("prop.test", soa=SoaRecord("ns1.prop.test", "h.prop.test"))
    zone.add("prop.test", TxtRecord(record_text))
    AuthoritativeServer([zone]).attach(network, "198.51.100.1")
    directory = AuthorityDirectory()
    directory.register("prop.test", "198.51.100.1")
    resolver = Resolver(network, directory, address4="203.0.113.1")
    outcome = SpfEvaluator(resolver).check_host(client_ip, "prop.test", "u@prop.test")
    assert outcome.result in SpfResult
    assert outcome.t_completed >= outcome.t_started
    # Strict evaluation never exceeds its own limits.
    assert outcome.mechanism_lookups <= 11
    assert outcome.void_lookups <= 3


# -- macros -----------------------------------------------------------------

_macro_letter = st.sampled_from("slodivh")
_macro_spec = st.lists(
    st.one_of(
        st.builds(lambda c, d, r: "%%{%s%s%s}" % (c, d, r),
                  _macro_letter,
                  st.sampled_from(["", "1", "2", "3"]),
                  st.sampled_from(["", "r"])),
        _label,
        st.just("."),
    ),
    min_size=1, max_size=6,
).map("".join)


@given(_macro_spec, _ipv4)
def test_macro_expansion_total(spec, ip):
    context = MacroContext(sender="u@example.com", domain="example.com", client_ip=ip, helo="h.example")
    try:
        expanded = expand_macros(spec, context)
    except SpfSyntaxError:
        return  # stray % composed by the generator
    assert "%" not in expanded or "%20" in expanded


# -- DMARC records -----------------------------------------------------------

_dmarc_record = st.builds(
    lambda p, sp, aspf, pct: "v=DMARC1; p=%s%s%s%s" % (
        p,
        "; sp=%s" % sp if sp else "",
        "; aspf=%s" % aspf if aspf else "",
        "; pct=%d" % pct if pct is not None else "",
    ),
    st.sampled_from(["none", "quarantine", "reject"]),
    st.sampled_from([None, "none", "quarantine", "reject"]),
    st.sampled_from([None, "r", "s"]),
    st.one_of(st.none(), st.integers(0, 100)),
)


@given(_dmarc_record)
def test_dmarc_roundtrip(text):
    record = DmarcRecord.from_text(text)
    again = DmarcRecord.from_text(record.to_text())
    assert again.policy == record.policy
    assert again.subdomain_policy == record.subdomain_policy
    assert again.spf_alignment == record.spf_alignment
    assert again.percent == record.percent


# -- TTL cache ---------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["a.test", "b.test", "c.test"]),
            st.sampled_from([RdataType.A, RdataType.TXT]),
            st.integers(0, 3),  # op: 0/1 put with ttl bucket, 2/3 get
            st.floats(0.0, 100.0),
        ),
        max_size=40,
    )
)
def test_ttl_cache_never_serves_stale(operations):
    cache = TtlCache()
    shadow = {}
    now = 0.0
    for name_text, rdtype, op, dt in operations:
        now += dt  # time only moves forward
        name = Name(name_text)
        key = (name.key, rdtype)
        if op <= 1:
            ttl = 10.0 * (op + 1)
            cache.put(name, rdtype, "value@%f" % now, ttl, now)
            shadow[key] = (now + ttl, "value@%f" % now)
        else:
            got = cache.get(name, rdtype, now)
            expiry_value = shadow.get(key)
            if got is not None:
                # Whatever the cache returns must still be fresh.
                assert expiry_value is not None
                expiry, value = expiry_value
                assert got == value
                assert now < expiry
