"""Multi-server failover, retry/backoff, and fault-plan determinism.

Regression coverage for the resolver's candidate loop: a timed-out
server must *not* be silently retried against the next candidate (the
``retry_next_server`` contract), while unreachable / refused / SERVFAIL
servers must fail over; and a :class:`~repro.net.retry.RetryPolicy`
must re-try the *same* server on its exponential virtual-time schedule
before moving on.
"""

import pytest

from repro.dns.rdata import RdataType, SoaRecord, TxtRecord
from repro.dns.resolver import (
    AnswerStatus,
    AuthorityDirectory,
    Resolver,
    ResolverConfig,
)
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import Zone
from repro.net import Clock, Network, UniformLatency
from repro.net.faults import FaultPlan
from repro.net.retry import RetryPolicy

PRIMARY_IP = "198.51.100.1"
SECONDARY_IP = "198.51.100.2"
RESOLVER_IP = "203.0.113.11"
ZONE = "failover.test"


def make_zone():
    zone = Zone(ZONE, soa=SoaRecord("ns1.%s" % ZONE, "hostmaster.%s" % ZONE))
    zone.add(ZONE, TxtRecord("v=spf1 -all"))
    return zone


class TwoServerWorld:
    """A zone served by a primary and a secondary authoritative server."""

    def __init__(self, seed=17, attach_primary=True, primary_faults=None):
        self.network = Network(UniformLatency(0.005, 0.02, seed=seed), Clock())
        self.directory = AuthorityDirectory()
        self.primary = AuthoritativeServer(faults=primary_faults)
        self.secondary = AuthoritativeServer()
        if attach_primary:
            self.primary.attach(self.network, PRIMARY_IP)
        else:
            # Registered in the directory but absent from the network:
            # the delegation points at a host that does not exist.
            pass
        self.secondary.attach(self.network, SECONDARY_IP)
        self.primary.add_zone(make_zone())
        self.secondary.add_zone(make_zone())
        self.directory.register(ZONE, PRIMARY_IP, SECONDARY_IP)

    def resolver(self, config=None):
        return Resolver(
            self.network, self.directory, address4=RESOLVER_IP, config=config
        )


class TestFailover:
    def test_timeout_does_not_try_the_next_server(self):
        # The satellite regression: a server that *answers too late* is a
        # resolver-side timeout, and the candidate loop must stop — not
        # replay the query against the secondary as if nothing happened.
        world = TwoServerWorld()
        world.primary.response_delay = lambda qname, qtype: 60.0
        answer, t = world.resolver().query_at(ZONE, RdataType.TXT, 0.0)
        assert answer.status is AnswerStatus.TIMEOUT
        assert len(world.primary.query_log) == 1
        assert len(world.secondary.query_log) == 0  # never consulted
        assert t == pytest.approx(ResolverConfig().timeout, abs=0.1)

    def test_last_status_reflects_the_actual_failure(self):
        # Even with no failover, the synthesized failure answer must say
        # *timeout*, not the loop-initialisation default (unreachable).
        world = TwoServerWorld()
        world.primary.response_delay = lambda qname, qtype: 60.0
        answer, _ = world.resolver().query_at(ZONE, RdataType.TXT, 0.0)
        assert answer.status is AnswerStatus.TIMEOUT

    def test_unreachable_primary_fails_over(self):
        world = TwoServerWorld(attach_primary=False)
        answer, _ = world.resolver().query_at(ZONE, RdataType.TXT, 0.0)
        assert answer.status is AnswerStatus.SUCCESS
        assert answer.server_ip == SECONDARY_IP
        assert len(world.secondary.query_log) == 1

    def test_servfail_primary_fails_over(self):
        world = TwoServerWorld(
            primary_faults=FaultPlan.parse("servfail:1.0", seed=3)
        )
        answer, _ = world.resolver().query_at(ZONE, RdataType.TXT, 0.0)
        assert answer.status is AnswerStatus.SUCCESS
        assert answer.server_ip == SECONDARY_IP
        # The primary *did* answer (with SERVFAIL) — both servers were
        # consulted, unlike the timeout case.
        assert len(world.primary.query_log) == 1

    def test_all_servers_failing_returns_last_rcode_answer(self):
        world = TwoServerWorld(
            primary_faults=FaultPlan.parse("servfail:1.0", seed=3)
        )
        world.secondary.faults = FaultPlan.parse("refused:1.0", seed=3)
        answer, _ = world.resolver().query_at(ZONE, RdataType.TXT, 0.0)
        assert answer.status.is_error
        assert len(world.primary.query_log) == 1
        assert len(world.secondary.query_log) == 1


class TestRetryPolicyIntegration:
    def test_lost_datagrams_retried_on_backoff_schedule(self):
        plan = FaultPlan.parse("udp_loss:1.0", seed=7)
        world = TwoServerWorld()
        world.network.faults = plan
        config = ResolverConfig(
            retry=RetryPolicy(attempts=3, backoff=2.0, timeout=1.0)
        )
        answer, t = world.resolver(config).query_at(ZONE, RdataType.TXT, 0.0)
        assert answer.status is AnswerStatus.TIMEOUT
        # Per candidate: try (1s) + backoff 2s + try + backoff 4s + try
        # = 9s; packet loss is retryable, so both candidates are walked.
        assert t == pytest.approx(18.0)
        assert plan.injected == {"udp_loss": 6}

    def test_partial_loss_recovers_within_budget(self):
        # With a 50% loss plan and three attempts per server, most
        # queries should still resolve — graceful degradation, not
        # collapse.
        plan = FaultPlan.parse("udp_loss:0.5", seed=11)
        world = TwoServerWorld()
        world.network.faults = plan
        config = ResolverConfig(
            retry=RetryPolicy(attempts=3, backoff=1.0, timeout=1.0), use_cache=False
        )
        resolver = world.resolver(config)
        statuses = []
        t = 0.0
        for _ in range(20):
            answer, t = resolver.query_at(ZONE, RdataType.TXT, t + 1.0)
            statuses.append(answer.status)
        assert statuses.count(AnswerStatus.SUCCESS) >= 15

    def test_retry_timeout_overrides_config_timeout(self):
        world = TwoServerWorld()
        world.primary.response_delay = lambda qname, qtype: 60.0
        config = ResolverConfig(retry=RetryPolicy(attempts=1, timeout=0.5))
        answer, t = world.resolver(config).query_at(ZONE, RdataType.TXT, 0.0)
        assert answer.status is AnswerStatus.TIMEOUT
        assert t == pytest.approx(0.5, abs=0.01)


class TestDeterminism:
    def _outcomes(self, spec, seed, world_seed=17):
        plan = FaultPlan.parse(spec, seed=seed)
        world = TwoServerWorld(seed=world_seed)
        world.network.faults = plan
        config = ResolverConfig(
            retry=RetryPolicy(attempts=2, backoff=1.0, timeout=1.0), use_cache=False
        )
        resolver = world.resolver(config)
        out = []
        t = 0.0
        for index in range(30):
            answer, t = resolver.query_at(ZONE, RdataType.TXT, t + float(index))
            out.append((answer.status.value, round(t, 6)))
        return out

    def test_identical_across_runs(self):
        spec = "udp_loss:0.4"
        assert self._outcomes(spec, seed=5) == self._outcomes(spec, seed=5)

    def test_seed_changes_the_fault_pattern(self):
        spec = "udp_loss:0.4"
        assert self._outcomes(spec, seed=5) != self._outcomes(spec, seed=6)
