"""SMTP edge cases: pipelining-style input, envelope reuse, odd framing."""

import pytest

from repro.net import Clock, Network, UniformLatency
from repro.smtp import EmailMessage, Reply, SmtpClient, SmtpServer, SmtpSession

SERVER_IP = "198.51.100.95"
CLIENT_IP = "203.0.113.95"


class CollectingSession(SmtpSession):
    banner_host = "edge.mx.example"

    def __init__(self, client_ip, t_accept):
        super().__init__(client_ip, t_accept)
        self.messages = []

    def on_message(self, message, t):
        self.messages.append(message)
        return Reply(250, "queued #%d" % len(self.messages)), 0.0


@pytest.fixture
def rig():
    network = Network(UniformLatency(seed=141), Clock())
    sessions = []

    def factory(ip, t):
        session = CollectingSession(ip, t)
        sessions.append(session)
        return session

    SmtpServer(factory).attach(network, SERVER_IP)
    return network, sessions


class TestPipelining:
    def test_multiple_commands_in_one_segment(self, rig):
        """Clients that pipeline send several commands in one TCP write;
        the session must answer each in order."""
        network, sessions = rig
        channel = network.connect_tcp(CLIENT_IP, SERVER_IP, 25, 0.0)
        data = b"EHLO c.example\r\nMAIL FROM:<a@b.example>\r\nRCPT TO:<x@y.example>\r\n"
        reply, _ = channel.request(data, channel.t_established)
        text = reply.decode()
        assert text.count("250") >= 3
        assert sessions[0].mail_from.address == "a@b.example"
        assert sessions[0].rcpt_to[0].address == "x@y.example"

    def test_split_command_across_segments(self, rig):
        """A command arriving in two TCP segments is buffered, not mangled."""
        network, sessions = rig
        channel = network.connect_tcp(CLIENT_IP, SERVER_IP, 25, 0.0)
        silent, _ = channel.request(b"EHLO c.exa", channel.t_established)
        assert silent is None  # incomplete line: no reply yet
        reply, _ = channel.request(b"mple\r\n", channel.t_established + 0.1)
        assert b"250" in reply
        assert sessions[0].helo_name == "c.example"

    def test_data_and_terminator_in_one_segment(self, rig):
        network, sessions = rig
        channel = network.connect_tcp(CLIENT_IP, SERVER_IP, 25, 0.0)
        preamble = (
            b"EHLO c.example\r\nMAIL FROM:<a@b.example>\r\nRCPT TO:<x@y.example>\r\nDATA\r\n"
        )
        reply, t = channel.request(preamble, channel.t_established)
        assert b"354" in reply
        body = b"Subject: s\r\n\r\nline one\r\nline two\r\n.\r\n"
        reply, _ = channel.request(body, t)
        assert b"queued #1" in reply
        assert sessions[0].messages[0].body == "line one\r\nline two"


class TestEnvelopeReuse:
    def test_two_messages_one_connection(self, rig):
        network, sessions = rig
        client, t = SmtpClient.connect(network, CLIENT_IP, SERVER_IP, 0.0)
        _, t = client.ehlo("c.example", t)
        for index in range(2):
            _, t = client.mail("a%d@b.example" % index, t)
            _, t = client.rcpt("x@y.example", t)
            _, t = client.data_command(t)
            _, t = client.send_message(
                EmailMessage([("From", "a%d@b.example" % index)], "msg %d" % index), t
            )
        assert len(sessions[0].messages) == 2
        assert sessions[0].messages[1].body == "msg 1"
        # Envelope resets after each message: a bare RCPT must 503 now.
        reply, _ = client.rcpt("z@y.example", t)
        assert reply.code == 503

    def test_rset_mid_data_not_special(self, rig):
        """Inside DATA, 'RSET' is message content, not a command."""
        network, sessions = rig
        client, t = SmtpClient.connect(network, CLIENT_IP, SERVER_IP, 0.0)
        _, t = client.ehlo("c.example", t)
        _, t = client.mail("a@b.example", t)
        _, t = client.rcpt("x@y.example", t)
        _, t = client.data_command(t)
        _, t = client.send_message(EmailMessage([("From", "a@b.example")], "RSET\r\nQUIT"), t)
        assert sessions[0].messages[0].body == "RSET\r\nQUIT"


class TestFraming:
    def test_bare_dot_line_requires_exact_match(self, rig):
        """A line of '..' is content (unstuffed to '.'), not a terminator."""
        network, sessions = rig
        client, t = SmtpClient.connect(network, CLIENT_IP, SERVER_IP, 0.0)
        _, t = client.ehlo("c.example", t)
        _, t = client.mail("a@b.example", t)
        _, t = client.rcpt("x@y.example", t)
        _, t = client.data_command(t)
        message = EmailMessage([("From", "a@b.example")], ".\r\nstill content")
        reply, _ = client.send_message(message, t)
        assert reply.code == 250
        assert sessions[0].messages[0].body == ".\r\nstill content"

    def test_commands_case_insensitive(self, rig):
        network, _ = rig
        client, t = SmtpClient.connect(network, CLIENT_IP, SERVER_IP, 0.0)
        reply, t = client.command("ehlo c.example", t)
        assert reply.code == 250
        reply, t = client.command("mail from:<a@b.example>", t)
        assert reply.code == 250
