"""Tests for the RFC 5322 message model."""

from hypothesis import given
from hypothesis import strategies as st

from repro.smtp.message import EmailMessage


class TestHeaders:
    def test_get_header_case_insensitive(self):
        message = EmailMessage([("From", "a@b"), ("Subject", "hi")])
        assert message.get_header("from") == "a@b"
        assert message.get_header("SUBJECT") == "hi"
        assert message.get_header("missing") is None

    def test_get_all(self):
        message = EmailMessage([("Received", "one"), ("Received", "two")])
        assert message.get_all("received") == ["one", "two"]

    def test_prepend_puts_header_first(self):
        message = EmailMessage([("From", "a@b")])
        message.prepend_header("DKIM-Signature", "v=1")
        assert message.headers[0][0] == "DKIM-Signature"

    def test_remove_headers(self):
        message = EmailMessage([("X-Spam", "yes"), ("From", "a@b"), ("x-spam", "no")])
        message.remove_headers("X-Spam")
        assert [name for name, _ in message.headers] == ["From"]


class TestSerialisation:
    def test_to_text_structure(self):
        message = EmailMessage([("From", "a@b"), ("To", "c@d")], "body line")
        assert message.to_text() == "From: a@b\r\nTo: c@d\r\n\r\nbody line"

    def test_roundtrip(self):
        message = EmailMessage(
            [("From", "alice@example.org"), ("Subject", "Test")],
            "Hello\r\n\r\nWorld\r\n",
        )
        parsed = EmailMessage.from_text(message.to_text())
        assert parsed.headers == message.headers
        assert parsed.body == message.body

    def test_folded_header_preserved(self):
        text = "Subject: first part\r\n second part\r\nFrom: a@b\r\n\r\nbody"
        parsed = EmailMessage.from_text(text)
        assert parsed.get_header("Subject") == "first part\r\n second part"
        assert parsed.get_header("From") == "a@b"
        assert EmailMessage.from_text(parsed.to_text()).headers == parsed.headers

    def test_lf_input_normalised(self):
        message = EmailMessage(body="a\nb\nc")
        assert message.body == "a\r\nb\r\nc"

    def test_cr_input_normalised(self):
        assert EmailMessage(body="a\rb").body == "a\r\nb"

    def test_headerless_message(self):
        parsed = EmailMessage.from_text("\r\njust a body")
        assert parsed.headers == []
        assert parsed.body == "just a body"

    def test_bodyless_message(self):
        parsed = EmailMessage.from_text("From: a@b")
        assert parsed.get_header("From") == "a@b"
        assert parsed.body == ""


_header_name = st.text(
    alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz-", min_size=1, max_size=20
)
_header_value = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), min_size=0, max_size=60
).map(lambda s: s.strip() or "x")
_body_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=200
)


@given(
    headers=st.lists(st.tuples(_header_name, _header_value), min_size=1, max_size=8),
    body=_body_text,
)
def test_message_roundtrip_property(headers, body):
    message = EmailMessage(headers, body)
    parsed = EmailMessage.from_text(message.to_text())
    assert parsed.headers == message.headers
    assert parsed.body == message.body
