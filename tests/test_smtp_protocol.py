"""Tests for the SMTP grammar: replies, commands, paths, dot-stuffing."""

import pytest

from repro.smtp.errors import SmtpProtocolError
from repro.smtp.protocol import (
    Mailbox,
    Reply,
    dot_stuff,
    dot_unstuff,
    parse_command,
    parse_path,
)


class TestReply:
    def test_single_line(self):
        reply = Reply(250, "OK")
        assert reply.to_bytes() == b"250 OK\r\n"

    def test_multiline_uses_dash_separator(self):
        reply = Reply(250, ["mx.example.com", "SIZE 100", "8BITMIME"])
        assert reply.to_bytes() == b"250-mx.example.com\r\n250-SIZE 100\r\n250 8BITMIME\r\n"

    def test_roundtrip(self):
        original = Reply(550, ["rejected", "for policy reasons"])
        assert Reply.from_bytes(original.to_bytes()) == original

    def test_classification(self):
        assert Reply(250, "x").is_success
        assert Reply(354, "x").is_intermediate
        assert Reply(451, "x").is_transient_failure
        assert Reply(550, "x").is_permanent_failure

    def test_code_range_enforced(self):
        with pytest.raises(SmtpProtocolError):
            Reply(199, "x")
        with pytest.raises(SmtpProtocolError):
            Reply(600, "x")

    def test_malformed_bytes_rejected(self):
        with pytest.raises(SmtpProtocolError):
            Reply.from_bytes(b"not a reply\r\n")
        with pytest.raises(SmtpProtocolError):
            Reply.from_bytes(b"")

    def test_inconsistent_multiline_rejected(self):
        with pytest.raises(SmtpProtocolError):
            Reply.from_bytes(b"250-a\r\n550 b\r\n")

    def test_text_joins_lines(self):
        assert Reply(250, ["a", "b"]).text == "a b"


class TestCommand:
    def test_verb_uppercased(self):
        command = parse_command("mail FROM:<a@b.c>")
        assert command.verb == "MAIL"
        assert command.argument == "FROM:<a@b.c>"

    def test_bare_verb(self):
        command = parse_command("QUIT\r\n")
        assert command.verb == "QUIT"
        assert command.argument == ""

    def test_empty_line_rejected(self):
        with pytest.raises(SmtpProtocolError):
            parse_command("\r\n")

    def test_to_line(self):
        assert parse_command("EHLO host").to_line() == "EHLO host"


class TestMailbox:
    def test_parse(self):
        mailbox = Mailbox.parse("user@example.com")
        assert mailbox.local == "user"
        assert mailbox.domain == "example.com"
        assert mailbox.address == "user@example.com"

    def test_local_part_may_contain_at_in_quotes(self):
        mailbox = Mailbox.parse("a@b@example.com")
        assert mailbox.domain == "example.com"

    def test_missing_at_rejected(self):
        with pytest.raises(SmtpProtocolError):
            Mailbox.parse("nodomain")

    def test_empty_parts_rejected(self):
        with pytest.raises(SmtpProtocolError):
            Mailbox.parse("@example.com")
        with pytest.raises(SmtpProtocolError):
            Mailbox.parse("user@")


class TestPath:
    def test_standard_path(self):
        mailbox = parse_path("FROM:<user@example.com>", "FROM")
        assert mailbox.address == "user@example.com"

    def test_case_insensitive_keyword(self):
        assert parse_path("from:<u@d.com>", "FROM").address == "u@d.com"

    def test_null_path(self):
        assert parse_path("FROM:<>", "FROM") is None

    def test_esmtp_parameters_ignored(self):
        mailbox = parse_path("FROM:<u@d.com> SIZE=1000 BODY=8BITMIME", "FROM")
        assert mailbox.address == "u@d.com"

    def test_tolerates_missing_brackets(self):
        assert parse_path("TO:u@d.com", "TO").address == "u@d.com"

    def test_source_route_stripped(self):
        mailbox = parse_path("TO:<@relay.example:user@d.com>", "TO")
        assert mailbox.address == "user@d.com"

    def test_wrong_keyword_rejected(self):
        with pytest.raises(SmtpProtocolError):
            parse_path("FROM:<u@d.com>", "TO")

    def test_unterminated_bracket_rejected(self):
        with pytest.raises(SmtpProtocolError):
            parse_path("TO:<u@d.com", "TO")


class TestDotStuffing:
    def test_stuff_and_unstuff(self):
        body = ".leading\r\nnormal\r\n..already"
        stuffed = dot_stuff(body)
        assert stuffed == "..leading\r\nnormal\r\n...already"
        assert dot_unstuff(stuffed) == body

    def test_plain_text_unchanged(self):
        assert dot_stuff("hello\r\nworld") == "hello\r\nworld"
