"""Tests for the SMTP server session and client over the virtual network."""

import pytest

from repro.net import Clock, Network, UniformLatency
from repro.smtp import (
    EmailMessage,
    Reply,
    SmtpClient,
    SmtpClientError,
    SmtpServer,
    SmtpSession,
)

SERVER_IP = "198.51.100.25"
CLIENT_IP = "203.0.113.25"


class RecordingSession(SmtpSession):
    banner_host = "mx.test.example"
    events = None  # set per-instance in __init__

    def __init__(self, client_ip, t_accept):
        super().__init__(client_ip, t_accept)
        self.events = []

    def on_mail(self, mailbox, t):
        self.events.append(("mail", mailbox, t))
        return super().on_mail(mailbox, t)

    def on_rcpt(self, mailbox, t):
        self.events.append(("rcpt", mailbox, t))
        if mailbox.local == "nobody":
            return Reply(550, "No such user"), 0.0
        return super().on_rcpt(mailbox, t)

    def on_message(self, message, t):
        self.events.append(("message", message, t))
        return Reply(250, "queued"), 0.0

    def on_disconnect(self, t):
        self.events.append(("disconnect", None, t))


@pytest.fixture
def net_and_sessions():
    network = Network(UniformLatency(seed=21), Clock())
    sessions = []

    def factory(client_ip, t_accept):
        session = RecordingSession(client_ip, t_accept)
        sessions.append(session)
        return session

    SmtpServer(factory).attach(network, SERVER_IP)
    return network, sessions


def _connect(network):
    return SmtpClient.connect(network, CLIENT_IP, SERVER_IP, 0.0)


class TestHappyPath:
    def test_full_delivery(self, net_and_sessions):
        network, sessions = net_and_sessions
        client, t = _connect(network)
        reply, t = client.ehlo("client.example", t)
        assert reply.code == 250
        reply, t = client.mail("alice@sender.example", t)
        assert reply.code == 250
        reply, t = client.rcpt("bob@rcpt.example", t)
        assert reply.code == 250
        reply, t = client.data_command(t)
        assert reply.code == 354
        message = EmailMessage([("From", "alice@sender.example")], "hi")
        reply, t = client.send_message(message, t)
        assert reply.code == 250
        kinds = [kind for kind, _, _ in sessions[0].events]
        assert kinds == ["mail", "rcpt", "message"]

    def test_null_sender_accepted(self, net_and_sessions):
        network, sessions = net_and_sessions
        client, t = _connect(network)
        _, t = client.ehlo("c.example", t)
        reply, t = client.mail(None, t)
        assert reply.code == 250
        assert sessions[0].events[0][1] is None

    def test_session_records_identity(self, net_and_sessions):
        network, sessions = net_and_sessions
        client, t = _connect(network)
        client.ehlo("probe.dns-lab.org", t)
        assert sessions[0].helo_name == "probe.dns-lab.org"
        assert sessions[0].used_esmtp
        assert sessions[0].client_ip == CLIENT_IP

    def test_helo_fallback(self, net_and_sessions):
        network, sessions = net_and_sessions
        client, t = _connect(network)
        reply, t = client.ehlo_or_helo("c.example", t)
        assert reply.code == 250  # EHLO worked, no fallback needed

    def test_timestamps_monotone(self, net_and_sessions):
        network, _ = net_and_sessions
        client, t0 = _connect(network)
        _, t1 = client.ehlo("c.example", t0)
        _, t2 = client.mail("a@b.example", t1 + 15.0)
        assert t0 < t1 < t1 + 15.0 < t2


class TestSequencing:
    def test_mail_before_helo_rejected(self, net_and_sessions):
        network, _ = net_and_sessions
        client, t = _connect(network)
        reply, _ = client.mail("a@b.example", t)
        assert reply.code == 503

    def test_rcpt_before_mail_rejected(self, net_and_sessions):
        network, _ = net_and_sessions
        client, t = _connect(network)
        _, t = client.ehlo("c.example", t)
        reply, _ = client.rcpt("x@y.example", t)
        assert reply.code == 503

    def test_data_without_rcpt_rejected(self, net_and_sessions):
        network, _ = net_and_sessions
        client, t = _connect(network)
        _, t = client.ehlo("c.example", t)
        _, t = client.mail("a@b.example", t)
        reply, _ = client.data_command(t)
        assert reply.code == 503

    def test_nested_mail_rejected(self, net_and_sessions):
        network, _ = net_and_sessions
        client, t = _connect(network)
        _, t = client.ehlo("c.example", t)
        _, t = client.mail("a@b.example", t)
        reply, _ = client.mail("other@b.example", t)
        assert reply.code == 503

    def test_rset_clears_envelope(self, net_and_sessions):
        network, _ = net_and_sessions
        client, t = _connect(network)
        _, t = client.ehlo("c.example", t)
        _, t = client.mail("a@b.example", t)
        reply, t = client.command("RSET", t)
        assert reply.code == 250
        reply, t = client.mail("again@b.example", t)
        assert reply.code == 250

    def test_failed_rcpt_not_recorded(self, net_and_sessions):
        network, sessions = net_and_sessions
        client, t = _connect(network)
        _, t = client.ehlo("c.example", t)
        _, t = client.mail("a@b.example", t)
        reply, t = client.rcpt("nobody@b.example", t)
        assert reply.code == 550
        assert sessions[0].rcpt_to == []

    def test_unknown_command(self, net_and_sessions):
        network, _ = net_and_sessions
        client, t = _connect(network)
        reply, _ = client.command("BOGUS arg", t)
        assert reply.code == 500

    def test_vrfy_not_implemented(self, net_and_sessions):
        network, _ = net_and_sessions
        client, t = _connect(network)
        reply, _ = client.command("VRFY user", t)
        assert reply.code == 502


class TestDisconnect:
    def test_abort_triggers_disconnect_hook(self, net_and_sessions):
        network, sessions = net_and_sessions
        client, t = _connect(network)
        _, t = client.ehlo("c.example", t)
        client.abort(t)
        assert sessions[0].events[-1][0] == "disconnect"

    def test_quit_closes_channel(self, net_and_sessions):
        network, _ = net_and_sessions
        client, t = _connect(network)
        reply, _ = client.quit(t)
        assert reply.code == 221
        assert not client.channel.is_open


class RejectingBannerSession(SmtpSession):
    def on_banner(self, t):
        return Reply(554, "No service"), 0.0


def test_unfriendly_banner_raises():
    network = Network(UniformLatency(seed=5), Clock())
    SmtpServer(lambda ip, t: RejectingBannerSession(ip, t)).attach(network, SERVER_IP)
    with pytest.raises(SmtpClientError) as info:
        SmtpClient.connect(network, CLIENT_IP, SERVER_IP, 0.0)
    assert info.value.reply.code == 554
