"""SPF evaluator edge cases: loops, depth, redirect subtleties, exp rules."""

import pytest

from repro.dns.rdata import ARecord, TxtRecord
from repro.spf import SpfConfig, SpfEvaluator, SpfResult
from tests.helpers import World

IP = "192.0.2.1"


@pytest.fixture
def world():
    return World(seed=151)


def _check(world, domain, config=None, ip=IP):
    evaluator = SpfEvaluator(world.resolver(), config=config)
    return evaluator.check_host(ip, domain, "u@%s" % domain)


class TestLoops:
    def test_self_include_terminates(self, world):
        zone = world.zone("loop.test")
        zone.add("loop.test", TxtRecord("v=spf1 include:loop.test -all"))
        outcome = _check(world, "loop.test")
        assert outcome.result is SpfResult.PERMERROR  # lookup limit trips

    def test_self_include_without_limits_hits_depth_guard(self, world):
        zone = world.zone("loop2.test")
        zone.add("loop2.test", TxtRecord("v=spf1 include:loop2.test -all"))
        config = SpfConfig(max_dns_mechanisms=None)
        outcome = _check(world, "loop2.test", config)
        assert outcome.result is SpfResult.PERMERROR
        assert outcome.mechanism_lookups <= config.max_include_depth + 2

    def test_mutual_include_terminates(self, world):
        zone = world.zone("ab.test")
        zone.add("a.ab.test", TxtRecord("v=spf1 include:b.ab.test -all"))
        zone.add("b.ab.test", TxtRecord("v=spf1 include:a.ab.test -all"))
        assert _check(world, "a.ab.test").result is SpfResult.PERMERROR

    def test_redirect_self_loop_terminates(self, world):
        zone = world.zone("rl.test")
        zone.add("rl.test", TxtRecord("v=spf1 redirect=rl.test"))
        assert _check(world, "rl.test").result is SpfResult.PERMERROR


class TestRedirectSubtleties:
    def test_redirect_ignored_when_all_present(self, world):
        zone = world.zone("ra.test")
        zone.add("ra.test", TxtRecord("v=spf1 -all redirect=open.ra.test"))
        zone.add("open.ra.test", TxtRecord("v=spf1 +all"))
        outcome = _check(world, "ra.test")
        assert outcome.result is SpfResult.FAIL  # -all matched; no redirect
        assert not any(r.qname == "open.ra.test" for r in outcome.lookups)

    def test_redirect_result_replaces_neutral_default(self, world):
        zone = world.zone("rr.test")
        zone.add("rr.test", TxtRecord("v=spf1 ip4:10.9.9.9 redirect=strict.rr.test"))
        zone.add("strict.rr.test", TxtRecord("v=spf1 -all"))
        assert _check(world, "rr.test").result is SpfResult.FAIL

    def test_redirect_counts_toward_lookup_limit(self, world):
        zone = world.zone("rc.test")
        chain = " ".join("include:c%d.rc.test" % index for index in range(10))
        zone.add("rc.test", TxtRecord("v=spf1 %s redirect=tail.rc.test" % chain))
        for index in range(10):
            zone.add("c%d.rc.test" % index, TxtRecord("v=spf1 ?all"))
        zone.add("tail.rc.test", TxtRecord("v=spf1 -all"))
        outcome = _check(world, "rc.test")
        # 10 includes consume the budget; following redirect is the 11th.
        assert outcome.result is SpfResult.PERMERROR

    def test_redirect_macro_expansion(self, world):
        zone = world.zone("rm.test")
        zone.add("rm.test", TxtRecord("v=spf1 redirect=%{d2}"))
        # %{d2} of rm.test is rm.test itself: a redirect loop, caught.
        assert _check(world, "rm.test").result is SpfResult.PERMERROR


class TestExpRules:
    def test_exp_only_at_top_level(self, world):
        """A child policy's exp= must not be used for the parent's fail."""
        zone = world.zone("exp.test")
        zone.add("exp.test", TxtRecord("v=spf1 include:child.exp.test -all"))
        zone.add("child.exp.test", TxtRecord("v=spf1 ip4:10.0.0.1 -all exp=childwhy.exp.test"))
        zone.add("childwhy.exp.test", TxtRecord("child explanation"))
        outcome = _check(world, "exp.test")
        # include's child fails -> no match -> parent -all fails the check,
        # and the parent has no exp=, so no explanation is produced.
        assert outcome.result is SpfResult.FAIL
        assert outcome.explanation is None

    def test_exp_lookup_failure_is_not_fatal(self, world):
        zone = world.zone("expfail.test")
        zone.add("expfail.test", TxtRecord("v=spf1 -all exp=missing.expfail.test"))
        outcome = _check(world, "expfail.test")
        assert outcome.result is SpfResult.FAIL
        assert outcome.explanation is None

    def test_exp_with_multiple_txt_ignored(self, world):
        zone = world.zone("expm.test")
        zone.add("expm.test", TxtRecord("v=spf1 -all exp=why.expm.test"))
        zone.add("why.expm.test", TxtRecord("one"))
        zone.add("why.expm.test", TxtRecord("two"))
        outcome = _check(world, "expm.test")
        assert outcome.result is SpfResult.FAIL
        assert outcome.explanation is None


class TestDomainValidation:
    def test_trailing_dot_domain_accepted(self, world):
        zone = world.zone("dot.test")
        zone.add("dot.test", TxtRecord("v=spf1 ip4:%s -all" % IP))
        assert _check(world, "dot.test.").result is SpfResult.PASS

    def test_oversized_label_is_none(self, world):
        assert _check(world, ("x" * 64) + ".test").result is SpfResult.NONE

    def test_ipv6_sender_against_ip4_only_policy(self, world):
        zone = world.zone("v6s.test")
        zone.add("v6s.test", TxtRecord("v=spf1 ip4:192.0.2.0/24 ~all"))
        outcome = _check(world, "v6s.test", ip="2001:db8::1")
        assert outcome.result is SpfResult.SOFTFAIL

    def test_cidr_zero_matches_everything(self, world):
        zone = world.zone("zero.test")
        zone.add("zero.test", TxtRecord("v=spf1 ip4:8.8.8.8/0 -all"))
        assert _check(world, "zero.test", ip="1.2.3.4").result is SpfResult.PASS


class TestDualCidrOnA:
    def test_ipv6_cidr_applies_to_aaaa(self, world):
        from repro.dns.rdata import AAAARecord

        zone = world.zone("dc.test")
        zone.add("dc.test", TxtRecord("v=spf1 a:net.dc.test/24//64 -all"))
        zone.add("net.dc.test", AAAARecord("2001:db8:1:2::1"))
        zone.add("net.dc.test", ARecord("192.0.2.1"))
        evaluator = SpfEvaluator(world.resolver())
        # Same /64 as the AAAA record -> pass.
        outcome = evaluator.check_host("2001:db8:1:2::ffff", "dc.test", "u@dc.test")
        assert outcome.result is SpfResult.PASS
        # Different /64 -> fail.
        outcome = evaluator.check_host("2001:db8:1:3::1", "dc.test", "u@dc.test")
        assert outcome.result is SpfResult.FAIL
