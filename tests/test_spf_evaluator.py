"""Tests for the SPF check_host evaluator: RFC behaviour and wild deviations."""

import pytest

from repro.dns.rdata import AAAARecord, ARecord, MxRecord, PtrRecord, TxtRecord
from repro.spf import SpfConfig, SpfEvaluator, SpfResult
from tests.helpers import World

IP = "192.0.2.1"
OTHER_IP = "203.0.113.77"


@pytest.fixture
def world():
    world = World(seed=31)
    zone = world.zone("spf.test")
    zone.add("basic.spf.test", TxtRecord("v=spf1 ip4:192.0.2.1 -all"))
    zone.add("amech.spf.test", TxtRecord("v=spf1 a:mail.spf.test -all"))
    zone.add("mail.spf.test", ARecord(IP))
    zone.add("mail.spf.test", AAAARecord("2001:db8::1"))
    zone.add("mxmech.spf.test", TxtRecord("v=spf1 mx -all"))
    zone.add("mxmech.spf.test", MxRecord(10, "mx1.mxmech.spf.test"))
    zone.add("mxmech.spf.test", MxRecord(20, "mx2.mxmech.spf.test"))
    zone.add("mx1.mxmech.spf.test", ARecord("198.51.100.5"))
    zone.add("mx2.mxmech.spf.test", ARecord(IP))
    zone.add("parent.spf.test", TxtRecord("v=spf1 include:child.spf.test -all"))
    zone.add("child.spf.test", TxtRecord("v=spf1 ip4:192.0.2.1 ~all"))
    zone.add("redir.spf.test", TxtRecord("v=spf1 redirect=basic.spf.test"))
    zone.add("neutral.spf.test", TxtRecord("v=spf1 ?all"))
    zone.add("exists.spf.test", TxtRecord("v=spf1 exists:%{ir}.ex.spf.test -all"))
    zone.add("1.2.0.192.ex.spf.test", ARecord("127.0.0.2"))
    return world


def _check(world, domain, ip=IP, config=None, sender=None, helo="client.example", t=0.0):
    evaluator = SpfEvaluator(world.resolver(), config=config)
    return evaluator.check_host(ip, domain, sender or "user@%s" % domain, helo=helo, t_start=t)


class TestMechanisms:
    def test_ip4_pass(self, world):
        assert _check(world, "basic.spf.test").result is SpfResult.PASS

    def test_all_fail(self, world):
        assert _check(world, "basic.spf.test", ip=OTHER_IP).result is SpfResult.FAIL

    def test_a_mechanism_v4(self, world):
        outcome = _check(world, "amech.spf.test")
        assert outcome.result is SpfResult.PASS
        assert outcome.matched_term == "a:mail.spf.test"

    def test_a_mechanism_v6(self, world):
        outcome = _check(world, "amech.spf.test", ip="2001:db8::1")
        assert outcome.result is SpfResult.PASS
        # The IPv6 client must have triggered an AAAA, not an A, lookup.
        assert any(r.qtype == "AAAA" for r in outcome.lookups)

    def test_mx_mechanism_walks_exchanges(self, world):
        outcome = _check(world, "mxmech.spf.test")
        assert outcome.result is SpfResult.PASS
        qnames = [r.qname for r in outcome.lookups]
        assert "mx1.mxmech.spf.test" in qnames  # lower preference first
        assert "mx2.mxmech.spf.test" in qnames

    def test_include_pass(self, world):
        outcome = _check(world, "parent.spf.test")
        assert outcome.result is SpfResult.PASS
        assert outcome.matched_term == "include:child.spf.test"

    def test_include_softfail_is_no_match(self, world):
        outcome = _check(world, "parent.spf.test", ip=OTHER_IP)
        assert outcome.result is SpfResult.FAIL  # falls through to -all

    def test_include_missing_policy_is_permerror(self, world):
        world.server.zones[0].add("badinc.spf.test", TxtRecord("v=spf1 include:void.spf.test -all"))
        outcome = _check(world, "badinc.spf.test")
        assert outcome.result is SpfResult.PERMERROR

    def test_redirect_followed(self, world):
        assert _check(world, "redir.spf.test").result is SpfResult.PASS
        assert _check(world, "redir.spf.test", ip=OTHER_IP).result is SpfResult.FAIL

    def test_redirect_to_nothing_is_permerror(self, world):
        world.server.zones[0].add("redirbad.spf.test", TxtRecord("v=spf1 redirect=void.spf.test"))
        assert _check(world, "redirbad.spf.test").result is SpfResult.PERMERROR

    def test_neutral_default(self, world):
        assert _check(world, "neutral.spf.test", ip=OTHER_IP).result is SpfResult.NEUTRAL

    def test_no_record_is_none(self, world):
        world.server.zones[0].add("norecord.spf.test", ARecord("1.2.3.4"))
        assert _check(world, "norecord.spf.test").result is SpfResult.NONE

    def test_no_directive_match_no_redirect_is_neutral(self, world):
        world.server.zones[0].add("open.spf.test", TxtRecord("v=spf1 ip4:10.0.0.1"))
        assert _check(world, "open.spf.test").result is SpfResult.NEUTRAL

    def test_exists_macro(self, world):
        assert _check(world, "exists.spf.test", ip="192.0.2.1").result is SpfResult.PASS
        assert _check(world, "exists.spf.test", ip="192.0.2.9").result is SpfResult.FAIL

    def test_ptr_mechanism(self, world):
        zone = world.zone("2.0.192.in-addr.arpa")
        zone.add("1.2.0.192.in-addr.arpa", PtrRecord("mail.ptrdom.spf.test"))
        spf_zone = world.server.zones[0]
        spf_zone.add("ptrdom.spf.test", TxtRecord("v=spf1 ptr:ptrdom.spf.test -all"))
        spf_zone.add("mail.ptrdom.spf.test", ARecord(IP))
        assert _check(world, "ptrdom.spf.test").result is SpfResult.PASS

    def test_ptr_without_reverse_zone_fails(self, world):
        spf_zone = world.server.zones[0]
        spf_zone.add("ptrless.spf.test", TxtRecord("v=spf1 ptr ~all"))
        outcome = _check(world, "ptrless.spf.test")
        assert outcome.result is SpfResult.SOFTFAIL

    def test_bad_domain_returns_none(self, world):
        assert _check(world, "nodots").result is SpfResult.NONE
        assert _check(world, "").result is SpfResult.NONE


class TestErrors:
    def test_unreachable_dns_temperror(self, world):
        outcome = _check(world, "unreg.elsewhere.example")
        assert outcome.result is SpfResult.TEMPERROR

    def test_syntax_error_permerror(self, world):
        world.server.zones[0].add("syntax.spf.test", TxtRecord("v=spf1 ipv4:192.0.2.1 -all"))
        outcome = _check(world, "syntax.spf.test")
        assert outcome.result is SpfResult.PERMERROR
        # Strict validators stop at the first lookup.
        assert len(outcome.lookups) == 1

    def test_multiple_records_permerror(self, world):
        zone = world.server.zones[0]
        zone.add("multi.spf.test", TxtRecord("v=spf1 a:one.spf.test -all"))
        zone.add("multi.spf.test", TxtRecord("v=spf1 a:two.spf.test -all"))
        outcome = _check(world, "multi.spf.test")
        assert outcome.result is SpfResult.PERMERROR
        assert len(outcome.lookups) == 1  # neither policy followed

    def test_non_spf_txt_ignored(self, world):
        zone = world.server.zones[0]
        zone.add("mixed.spf.test", TxtRecord("google-site-verification=abc123"))
        zone.add("mixed.spf.test", TxtRecord("v=spf1 ip4:192.0.2.1 -all"))
        assert _check(world, "mixed.spf.test").result is SpfResult.PASS

    def test_include_child_temperror_propagates(self, world):
        world.server.zones[0].add(
            "tempinc.spf.test", TxtRecord("v=spf1 include:child.unreachable.example -all")
        )
        assert _check(world, "tempinc.spf.test").result is SpfResult.TEMPERROR


class TestLookupLimits:
    def _chain_zone(self, world, length):
        """A policy whose include chain is ``length`` levels deep."""
        zone = world.server.zones[0]
        for index in range(length):
            nxt = "l%d.chain.spf.test" % (index + 1)
            name = "chain.spf.test" if index == 0 else "l%d.chain.spf.test" % index
            zone.add(name, TxtRecord("v=spf1 include:%s ?all" % nxt))
        zone.add("l%d.chain.spf.test" % length, TxtRecord("v=spf1 ?all"))

    def test_limit_enforced_at_ten(self, world):
        self._chain_zone(world, 15)
        outcome = _check(world, "chain.spf.test")
        assert outcome.result is SpfResult.PERMERROR
        assert outcome.mechanism_lookups == 11  # aborts at the 11th term

    def test_limit_disabled_walks_whole_chain(self, world):
        self._chain_zone(world, 15)
        outcome = _check(world, "chain.spf.test", config=SpfConfig(max_dns_mechanisms=None))
        assert outcome.result is SpfResult.NEUTRAL
        assert outcome.mechanism_lookups == 15

    def test_void_limit(self, world):
        world.server.zones[0].add(
            "voidy.spf.test",
            TxtRecord("v=spf1 a:v1.spf.test a:v2.spf.test a:v3.spf.test a:v4.spf.test a:v5.spf.test -all"),
        )
        outcome = _check(world, "voidy.spf.test")
        assert outcome.result is SpfResult.PERMERROR
        # The budget is checked before each lookup, so a compliant
        # validator is observable as exactly two void queries (s7.3).
        assert outcome.void_lookups == 2
        void_queries = [r for r in outcome.lookups if r.qname.startswith("v") and r.qname[1].isdigit()]
        assert len(void_queries) == 2

    def test_void_limit_disabled(self, world):
        world.server.zones[0].add(
            "voidy2.spf.test",
            TxtRecord("v=spf1 a:v1.spf.test a:v2.spf.test a:v3.spf.test a:v4.spf.test a:v5.spf.test -all"),
        )
        outcome = _check(world, "voidy2.spf.test", config=SpfConfig(max_void_lookups=None))
        assert outcome.result is SpfResult.FAIL
        assert outcome.void_lookups == 5

    def test_mx_address_limit(self, world):
        zone = world.server.zones[0]
        zone.add("manymx.spf.test", TxtRecord("v=spf1 mx -all"))
        for index in range(20):
            zone.add("manymx.spf.test", MxRecord(index, "h%d.manymx.spf.test" % index))
            zone.add("h%d.manymx.spf.test" % index, ARecord("198.51.100.%d" % index))
        outcome = _check(world, "manymx.spf.test")
        assert outcome.result is SpfResult.PERMERROR
        a_lookups = [r for r in outcome.lookups if r.qtype == "A" and r.qname.startswith("h")]
        assert len(a_lookups) == 10

    def test_mx_address_limit_disabled(self, world):
        zone = world.server.zones[0]
        zone.add("manymx2.spf.test", TxtRecord("v=spf1 mx -all"))
        for index in range(20):
            zone.add("manymx2.spf.test", MxRecord(index, "g%d.manymx2.spf.test" % index))
            zone.add("g%d.manymx2.spf.test" % index, ARecord("198.51.100.%d" % index))
        outcome = _check(world, "manymx2.spf.test", config=SpfConfig(max_mx_addresses=None))
        assert outcome.result is SpfResult.FAIL
        a_lookups = [r for r in outcome.lookups if r.qtype == "A" and r.qname.startswith("g")]
        assert len(a_lookups) == 20

    def test_overall_timeout_temperror(self, world):
        self._chain_zone(world, 15)
        world.server.response_delay = lambda name, rdtype: 0.8
        config = SpfConfig(max_dns_mechanisms=None, overall_timeout=4.0)
        outcome = _check(world, "chain.spf.test", config=config)
        assert outcome.result is SpfResult.TEMPERROR
        assert outcome.elapsed > 4.0
        assert outcome.mechanism_lookups < 15


class TestWildDeviations:
    def test_tolerant_syntax_keeps_validating(self, world):
        zone = world.server.zones[0]
        zone.add("tsyntax.spf.test", TxtRecord("v=spf1 ipv4:192.0.2.1 a:after.spf.test -all"))
        zone.add("after.spf.test", ARecord(IP))
        outcome = _check(world, "tsyntax.spf.test", config=SpfConfig(tolerant_syntax=True))
        assert outcome.result is SpfResult.PASS
        # The giveaway the paper watches for: a lookup *right of* the error.
        assert any(r.qname == "after.spf.test" for r in outcome.lookups)

    def test_ignore_child_permerror(self, world):
        zone = world.server.zones[0]
        zone.add("badchild.spf.test", TxtRecord("v=spf1 include:broken.spf.test ip4:192.0.2.1 -all"))
        zone.add("broken.spf.test", TxtRecord("v=spf1 ipv4:oops -all"))
        strict = _check(world, "badchild.spf.test")
        assert strict.result is SpfResult.PERMERROR
        loose = _check(world, "badchild.spf.test", config=SpfConfig(ignore_child_permerror=True))
        assert loose.result is SpfResult.PASS

    def test_multiple_records_follow_first(self, world):
        zone = world.server.zones[0]
        zone.add("twice.spf.test", TxtRecord("v=spf1 ip4:192.0.2.1 -all"))
        zone.add("twice.spf.test", TxtRecord("v=spf1 ip4:198.51.100.1 -all"))
        outcome = _check(world, "twice.spf.test", config=SpfConfig(on_multiple_records="first"))
        assert outcome.result is SpfResult.PASS
        outcome = _check(world, "twice.spf.test", config=SpfConfig(on_multiple_records="last"))
        assert outcome.result is SpfResult.FAIL

    def test_mx_a_fallback_violation(self, world):
        zone = world.server.zones[0]
        # An mx mechanism whose target has no MX records, only an A record.
        zone.add("nofallback.spf.test", TxtRecord("v=spf1 mx:bare.spf.test -all"))
        zone.add("bare.spf.test", ARecord(IP))
        strict = _check(world, "nofallback.spf.test")
        assert strict.result is SpfResult.FAIL
        assert not any(r.qtype == "A" and r.qname == "bare.spf.test" for r in strict.lookups)
        deviant = _check(world, "nofallback.spf.test", config=SpfConfig(mx_a_fallback=True))
        assert deviant.result is SpfResult.PASS
        assert any(r.qtype == "A" and r.qname == "bare.spf.test" for r in deviant.lookups)

    def test_fetch_only_partial_validator(self, world):
        outcome = _check(world, "amech.spf.test", config=SpfConfig(fetch_only=True))
        assert outcome.result is SpfResult.NEUTRAL
        assert len(outcome.lookups) == 1
        assert outcome.lookups[0].qtype == "TXT"


class TestSerialVsParallel:
    def _ordered_qnames(self, world, suffix):
        entries = world.server.queries_under(suffix)
        return [e.qname.to_text(omit_final_dot=True) for e in sorted(entries, key=lambda e: e.timestamp)]

    def _build_nested(self, world):
        """The paper's Figure 3 policy: include chain L1->L3 plus an 'a'."""
        zone = world.server.zones[0]
        zone.add("l0.par.spf.test", TxtRecord("v=spf1 include:l1.par.spf.test a:foo.par.spf.test -all"))
        zone.add("l1.par.spf.test", TxtRecord("v=spf1 include:l2.par.spf.test ?all"))
        zone.add("l2.par.spf.test", TxtRecord("v=spf1 include:l3.par.spf.test ?all"))
        zone.add("l3.par.spf.test", TxtRecord("v=spf1 ?all"))
        zone.add("foo.par.spf.test", ARecord("192.0.2.99"))
        world.server.response_delay = (
            lambda name, rdtype: 0.1 if name.labels and name.labels[0] in ("l1", "l2") else 0.0
        )

    def test_serial_lookup_order(self, world):
        self._build_nested(world)
        outcome = _check(world, "l0.par.spf.test")
        assert outcome.result is SpfResult.FAIL
        order = self._ordered_qnames(world, "par.spf.test")
        assert order.index("foo.par.spf.test") > order.index("l3.par.spf.test")

    def test_parallel_lookup_order(self, world):
        self._build_nested(world)
        outcome = _check(world, "l0.par.spf.test", config=SpfConfig(parallel_lookups=True))
        assert outcome.result is SpfResult.FAIL
        order = self._ordered_qnames(world, "par.spf.test")
        assert order.index("foo.par.spf.test") < order.index("l3.par.spf.test")


class TestTrace:
    def test_timing_is_monotone(self, world):
        outcome = _check(world, "mxmech.spf.test", t=100.0)
        assert outcome.t_started == 100.0
        previous = 100.0
        for record in outcome.lookups:
            assert record.t_issued >= previous or record.t_issued >= 100.0
            assert record.t_completed >= record.t_issued
            previous = record.t_completed
        assert outcome.t_completed == previous

    def test_lookup_statuses_recorded(self, world):
        world.server.zones[0].add("onevoid.spf.test", TxtRecord("v=spf1 a:v1.spf.test ip4:192.0.2.1 -all"))
        outcome = _check(world, "onevoid.spf.test")
        assert outcome.result is SpfResult.PASS
        statuses = {r.qname: r.status for r in outcome.lookups}
        assert statuses["v1.spf.test"] == "nxdomain"
