"""Tests for SPF macro expansion (RFC 7208 section 7.4 examples)."""

import pytest

from repro.spf.errors import SpfSyntaxError
from repro.spf.macros import MacroContext, expand_macros


@pytest.fixture
def context():
    # The RFC 7208 section 7.4 example context.
    return MacroContext(
        sender="strong-bad@email.example.com",
        domain="email.example.com",
        client_ip="192.0.2.3",
        helo="mx.example.org",
    )


class TestRfcExamples:
    """The worked examples straight out of RFC 7208 section 7.4."""

    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("%{s}", "strong-bad@email.example.com"),
            ("%{o}", "email.example.com"),
            ("%{d}", "email.example.com"),
            ("%{d4}", "email.example.com"),
            ("%{d3}", "email.example.com"),
            ("%{d2}", "example.com"),
            ("%{d1}", "com"),
            ("%{dr}", "com.example.email"),
            ("%{d2r}", "example.email"),
            ("%{l}", "strong-bad"),
            ("%{l-}", "strong.bad"),
            ("%{lr}", "strong-bad"),
            ("%{lr-}", "bad.strong"),
            ("%{l1r-}", "strong"),
        ],
    )
    def test_simple_expansions(self, context, spec, expected):
        assert expand_macros(spec, context) == expected

    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("%{ir}.%{v}._spf.%{d2}", "3.2.0.192.in-addr._spf.example.com"),
            ("%{lr-}.lp._spf.%{d2}", "bad.strong.lp._spf.example.com"),
            ("%{lr-}.lp.%{ir}.%{v}._spf.%{d2}", "bad.strong.lp.3.2.0.192.in-addr._spf.example.com"),
            ("%{ir}.%{v}.%{l1r-}.lp._spf.%{d2}", "3.2.0.192.in-addr.strong.lp._spf.example.com"),
            ("%{d2}.trusted-domains.example.net", "example.com.trusted-domains.example.net"),
        ],
    )
    def test_composite_expansions(self, context, spec, expected):
        assert expand_macros(spec, context) == expected

    def test_ipv6_nibble_expansion(self, context):
        v6_context = MacroContext(
            sender=context.sender,
            domain=context.domain,
            client_ip="2001:db8::cb01",
            helo=context.helo,
        )
        expected = (
            "1.0.b.c.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.8.b.d.0.1.0.0.2"
            ".ip6._spf.example.com"
        )
        assert expand_macros("%{ir}.%{v}._spf.%{d2}", v6_context) == expected


class TestOtherLetters:
    def test_helo_macro(self, context):
        assert expand_macros("%{h}", context) == "mx.example.org"

    def test_ip_macro_v4(self, context):
        assert expand_macros("%{i}", context) == "192.0.2.3"

    def test_p_macro_defaults_to_unknown(self, context):
        assert expand_macros("%{p}", context) == "unknown"

    def test_p_macro_uses_validated_name(self, context):
        context.validated_ptr = "mail.example.com"
        assert expand_macros("%{p}", context) == "mail.example.com"

    def test_literals(self, context):
        assert expand_macros("a%%b", context) == "a%b"
        assert expand_macros("a%_b", context) == "a b"
        assert expand_macros("a%-b", context) == "a%20b"

    def test_exp_only_letters_rejected_in_domain_spec(self, context):
        for spec in ("%{c}", "%{r}", "%{t}"):
            with pytest.raises(SpfSyntaxError):
                expand_macros(spec, context)

    def test_exp_only_letters_allowed_in_exp(self, context):
        assert expand_macros("%{c}", context, is_exp=True) == "192.0.2.3"
        assert expand_macros("%{r}", context, is_exp=True) == "receiver.invalid"

    def test_uppercase_letter_url_escapes(self, context):
        context_with_space = MacroContext(
            sender="st rong@example.com",
            domain="example.com",
            client_ip="192.0.2.3",
            helo="h.example",
        )
        assert expand_macros("%{S}", context_with_space) == "st%20rong%40example.com"

    def test_unknown_letter_rejected(self, context):
        with pytest.raises(SpfSyntaxError):
            expand_macros("%{z}", context)

    def test_stray_percent_rejected(self, context):
        with pytest.raises(SpfSyntaxError):
            expand_macros("100%", context)

    def test_zero_digit_transformer_rejected(self, context):
        with pytest.raises(SpfSyntaxError):
            expand_macros("%{d0}", context)

    def test_empty_local_part_becomes_postmaster(self):
        context = MacroContext(sender="example.com", domain="example.com", client_ip="1.2.3.4", helo="h")
        assert expand_macros("%{l}", context) == "postmaster"

    def test_plain_text_passthrough(self, context):
        assert expand_macros("_spf.example.com", context) == "_spf.example.com"
