"""Tests for the SPF record parser."""

import pytest

from repro.spf.errors import SpfSyntaxError
from repro.spf.parser import parse_record
from repro.spf.terms import (
    Directive,
    InvalidTerm,
    MechanismKind,
    Modifier,
    Qualifier,
    looks_like_spf,
)


class TestVersionSection:
    def test_bare_record(self):
        record = parse_record("v=spf1")
        assert record.terms == []

    def test_wrong_version_rejected(self):
        with pytest.raises(SpfSyntaxError):
            parse_record("v=spf2 -all")

    def test_version_must_be_delimited(self):
        assert not looks_like_spf("v=spf10 -all")
        assert looks_like_spf("v=spf1 -all")
        assert looks_like_spf("v=spf1")
        assert not looks_like_spf("v=DMARC1; p=none")


class TestMechanisms:
    def test_all_with_qualifiers(self):
        record = parse_record("v=spf1 ?all")
        directive = record.terms[0]
        assert directive.qualifier is Qualifier.NEUTRAL
        assert directive.mechanism.kind is MechanismKind.ALL

    def test_default_qualifier_is_pass(self):
        record = parse_record("v=spf1 all")
        assert record.terms[0].qualifier is Qualifier.PASS

    def test_all_takes_no_argument(self):
        with pytest.raises(SpfSyntaxError):
            parse_record("v=spf1 all:example.com")

    def test_ip4_with_and_without_prefix(self):
        record = parse_record("v=spf1 ip4:192.0.2.1 ip4:198.51.100.0/24")
        assert record.terms[0].mechanism.network == "192.0.2.1/32"
        assert record.terms[1].mechanism.network == "198.51.100.0/24"

    def test_ip4_bad_prefix(self):
        with pytest.raises(SpfSyntaxError):
            parse_record("v=spf1 ip4:192.0.2.0/33")

    def test_ip4_requires_address(self):
        with pytest.raises(SpfSyntaxError):
            parse_record("v=spf1 ip4")

    def test_ip6(self):
        record = parse_record("v=spf1 ip6:2001:db8::/32")
        assert record.terms[0].mechanism.network == "2001:db8::/32"

    def test_ip6_bad_prefix(self):
        with pytest.raises(SpfSyntaxError):
            parse_record("v=spf1 ip6:2001:db8::/129")

    def test_misspelled_mechanism_rejected(self):
        # 'ipv4' instead of 'ip4' — the exact error the paper's syntax test
        # policy uses (Section 7.3).
        with pytest.raises(SpfSyntaxError):
            parse_record("v=spf1 ipv4:192.0.2.1 -all")

    def test_a_bare_and_with_domain_and_cidr(self):
        record = parse_record("v=spf1 a a:mail.example.com a:mail.example.com/28 a/24")
        mechanisms = [t.mechanism for t in record.terms]
        assert mechanisms[0].domain_spec is None and mechanisms[0].cidr4 is None
        assert mechanisms[1].domain_spec == "mail.example.com"
        assert mechanisms[2].cidr4 == 28
        assert mechanisms[3].domain_spec is None and mechanisms[3].cidr4 == 24

    def test_a_dual_cidr(self):
        record = parse_record("v=spf1 a:m.example.com/28//64")
        mechanism = record.terms[0].mechanism
        assert mechanism.cidr4 == 28 and mechanism.cidr6 == 64

    def test_a_ipv6_only_cidr(self):
        record = parse_record("v=spf1 a//64")
        mechanism = record.terms[0].mechanism
        assert mechanism.cidr4 is None and mechanism.cidr6 == 64

    def test_mx(self):
        record = parse_record("v=spf1 mx mx:other.example.org/27")
        assert record.terms[0].mechanism.kind is MechanismKind.MX
        assert record.terms[1].mechanism.domain_spec == "other.example.org"
        assert record.terms[1].mechanism.cidr4 == 27

    def test_include_requires_domain(self):
        with pytest.raises(SpfSyntaxError):
            parse_record("v=spf1 include")
        with pytest.raises(SpfSyntaxError):
            parse_record("v=spf1 include:")

    def test_exists_with_macro(self):
        record = parse_record("v=spf1 exists:%{ir}.sbl.example.org")
        assert record.terms[0].mechanism.domain_spec == "%{ir}.sbl.example.org"

    def test_ptr_bare_and_with_domain(self):
        record = parse_record("v=spf1 ptr ptr:example.com")
        assert record.terms[0].mechanism.domain_spec is None
        assert record.terms[1].mechanism.domain_spec == "example.com"

    def test_bad_cidr_garbage(self):
        with pytest.raises(SpfSyntaxError):
            parse_record("v=spf1 a/abc")
        with pytest.raises(SpfSyntaxError):
            parse_record("v=spf1 a/24x")


class TestModifiers:
    def test_redirect(self):
        record = parse_record("v=spf1 redirect=_spf.example.com")
        assert record.modifier("redirect") == "_spf.example.com"

    def test_exp(self):
        record = parse_record("v=spf1 -all exp=explain.example.com")
        assert record.modifier("exp") == "explain.example.com"

    def test_unknown_modifier_tolerated(self):
        # Unknown modifiers MUST be ignored (RFC 7208 s6).
        record = parse_record("v=spf1 unknown-mod=anything -all")
        assert isinstance(record.terms[0], Modifier)

    def test_modifier_with_qualifier_rejected(self):
        with pytest.raises(SpfSyntaxError):
            parse_record("v=spf1 +redirect=example.com")

    def test_modifier_lookup_is_case_insensitive(self):
        record = parse_record("v=spf1 REDIRECT=x.example")
        assert record.modifier("redirect") == "x.example"


class TestTolerantMode:
    def test_invalid_terms_preserved(self):
        record = parse_record("v=spf1 ipv4:192.0.2.1 a:ok.example.com -all", tolerant=True)
        assert isinstance(record.terms[0], InvalidTerm)
        assert isinstance(record.terms[1], Directive)
        assert record.terms[0].text == "ipv4:192.0.2.1"

    def test_valid_record_identical_in_both_modes(self):
        strict = parse_record("v=spf1 a mx -all")
        tolerant = parse_record("v=spf1 a mx -all", tolerant=True)
        assert strict.terms == tolerant.terms


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "v=spf1 ip4:192.0.2.1/32 a:bar.foo.com include:foo.net -all",
            "v=spf1 mx/24 ~all",
            "v=spf1 exists:%{i}.spf.example.org ?all",
            "v=spf1 redirect=_spf.example.com",
        ],
    )
    def test_to_text_reparses_identically(self, text):
        record = parse_record(text)
        assert parse_record(record.to_text()).terms == record.terms
