"""SPF conformance scenarios modeled on RFC 7208 Appendix A.

The appendix walks a family of example.com policies (mx with multiple
exchanges, 'a' with a CIDR suffix, include across hosts, open '+all',
cross-domain 'a:'); this module reproduces that zone and asserts the
results the specification derives for each sender address.
"""

import pytest

from repro.dns.rdata import ARecord, MxRecord, TxtRecord
from repro.spf import SpfEvaluator, SpfResult
from tests.helpers import World


@pytest.fixture(scope="module")
def world():
    world = World(seed=404)
    zone = world.zone("example.com")
    # The Appendix A zone, lightly transcribed.
    zone.add("example.com", TxtRecord("v=spf1 +mx a:colo.example.com/28 -all"))
    zone.add("amy.example.com", TxtRecord("v=spf1 a -all"))
    zone.add("bob.example.com", TxtRecord("v=spf1 a:mailers.example.com -all"))
    zone.add("joel.example.com", TxtRecord("v=spf1 include:example.com -all"))
    zone.add("hackers.example.com", TxtRecord("v=spf1 +all"))
    zone.add("moo.example.com", TxtRecord("v=spf1 a:example.com -all"))
    zone.add("example.com", MxRecord(10, "mail-a.example.com"))
    zone.add("example.com", MxRecord(20, "mail-b.example.com"))
    zone.add("example.com", ARecord("192.0.2.10"))
    zone.add("example.com", ARecord("192.0.2.11"))
    zone.add("amy.example.com", ARecord("192.0.2.65"))
    zone.add("bob.example.com", ARecord("192.0.2.66"))
    zone.add("mail-a.example.com", ARecord("192.0.2.129"))
    zone.add("mail-b.example.com", ARecord("192.0.2.130"))
    zone.add("mailers.example.com", ARecord("192.0.2.129"))
    zone.add("mailers.example.com", ARecord("192.0.2.130"))
    zone.add("colo.example.com", ARecord("192.0.2.140"))
    return world


def check(world, ip, domain):
    evaluator = SpfEvaluator(world.resolver())
    return evaluator.check_host(ip, domain, "sender@%s" % domain).result


class TestMainPolicy:
    """example.com: 'v=spf1 +mx a:colo.example.com/28 -all'."""

    @pytest.mark.parametrize("ip", ["192.0.2.129", "192.0.2.130"])
    def test_mx_hosts_pass(self, world, ip):
        assert check(world, ip, "example.com") is SpfResult.PASS

    def test_colo_block_passes_via_cidr(self, world):
        # colo resolves to .140; /28 covers .128-.143, and the client .135
        # falls inside the same network as the A record.
        assert check(world, "192.0.2.135", "example.com") is SpfResult.PASS

    def test_own_a_records_do_not_authorize(self, world):
        # The policy has no bare 'a'; the web servers cannot send mail.
        assert check(world, "192.0.2.10", "example.com") is SpfResult.FAIL

    def test_outside_address_fails(self, world):
        assert check(world, "192.0.2.200", "example.com") is SpfResult.FAIL


class TestPerUserPolicies:
    def test_amy_sends_from_her_own_host(self, world):
        assert check(world, "192.0.2.65", "amy.example.com") is SpfResult.PASS

    def test_amy_cannot_send_from_bobs_host(self, world):
        assert check(world, "192.0.2.66", "amy.example.com") is SpfResult.FAIL

    def test_bob_sends_via_the_mailers(self, world):
        assert check(world, "192.0.2.129", "bob.example.com") is SpfResult.PASS
        assert check(world, "192.0.2.130", "bob.example.com") is SpfResult.PASS

    def test_bob_cannot_send_from_his_own_host(self, world):
        # bob's policy names mailers.example.com, not his own A record.
        assert check(world, "192.0.2.66", "bob.example.com") is SpfResult.FAIL


class TestIncludeAndOpenPolicies:
    def test_joel_inherits_example_com_senders(self, world):
        assert check(world, "192.0.2.129", "joel.example.com") is SpfResult.PASS

    def test_joel_rejects_other_senders(self, world):
        assert check(world, "192.0.2.65", "joel.example.com") is SpfResult.FAIL

    def test_hackers_pass_everything(self, world):
        for ip in ("192.0.2.1", "203.0.113.99", "198.51.100.77"):
            assert check(world, ip, "hackers.example.com") is SpfResult.PASS

    def test_moo_authorizes_example_com_web_hosts(self, world):
        # moo's 'a:example.com' points at the A records .10/.11.
        assert check(world, "192.0.2.10", "moo.example.com") is SpfResult.PASS
        assert check(world, "192.0.2.129", "moo.example.com") is SpfResult.FAIL


class TestDnsEconomy:
    def test_ip_literal_needs_one_lookup(self, world):
        zone = world.server.zones[0]
        zone.add("lit.example.com", TxtRecord("v=spf1 ip4:192.0.2.0/24 -all"))
        evaluator = SpfEvaluator(world.resolver())
        outcome = evaluator.check_host("192.0.2.5", "lit.example.com", "s@lit.example.com")
        assert outcome.result is SpfResult.PASS
        assert len(outcome.lookups) == 1  # the policy TXT only

    def test_mx_walk_counts_each_exchange(self, world):
        evaluator = SpfEvaluator(world.resolver())
        outcome = evaluator.check_host("192.0.2.130", "example.com", "s@example.com")
        qnames = [record.qname for record in outcome.lookups]
        # mail-a (pref 10) is resolved before mail-b (pref 20) matches.
        assert "mail-a.example.com" in qnames
        assert qnames.index("mail-a.example.com") < qnames.index("mail-b.example.com")
